#include "util/spec.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace mstep::util {

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that parses back exactly.
  // strtod, not std::stod: stod throws out_of_range on ERANGE, which a
  // subnormal value (e.g. a final_delta_inf of 1e-320) triggers.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

double parse_double(const std::string& text, const std::string& what) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  // Underflow to a subnormal (ERANGE with a finite result) is accepted;
  // a syntax error or overflow to infinity is not.
  if (end != text.c_str() + text.size() || end == text.c_str() ||
      !std::isfinite(v)) {
    throw std::invalid_argument(what + ": bad value '" + text + "'");
  }
  return v;
}

int parse_int(const std::string& text, const std::string& what) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(what + ": bad value '" + text + "'");
  }
}

void parse_spec(const std::string& text, const std::string& what,
                std::string* name, SpecOptions* options) {
  std::stringstream ss(text);
  std::string piece;
  bool first = true;
  while (std::getline(ss, piece, ':')) {
    if (first) {
      *name = piece;
      first = false;
      continue;
    }
    const auto eq = piece.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument(what + ": option must be key=value, got '" +
                                  piece + "'");
    }
    (*options)[piece.substr(0, eq)] =
        parse_double(piece.substr(eq + 1), what + ": option " + piece);
  }
  if (name->empty()) {
    throw std::invalid_argument(what + ": empty spec");
  }
}

std::string spec_string(const std::string& name, const SpecOptions& options) {
  std::string out = name;
  for (const auto& [key, value] : options) {
    out += ':' + key + '=' + format_double(value);
  }
  return out;
}

}  // namespace mstep::util
