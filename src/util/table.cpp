#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mstep::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::add_separator() { rows_.emplace_back(); }

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
          c == '+' || c == 'e' || c == 'E' || c == 'x')) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string Table::to_string(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  if (!title.empty()) os << title << '\n';

  auto hline = [&] {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << "| ";
      if (looks_numeric(cell)) {
        os << std::string(width[c] - cell.size(), ' ') << cell;
      } else {
        os << cell << std::string(width[c] - cell.size(), ' ');
      }
      os << ' ';
    }
    os << "|\n";
  };

  hline();
  emit(header_);
  hline();
  for (const auto& row : rows_) {
    if (row.empty()) {
      hline();
    } else {
      emit(row);
    }
  }
  hline();
  return os.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  os << to_string(title);
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::integer(long long v) { return std::to_string(v); }

std::string Table::ratio(double v, int precision) {
  return fixed(v, precision);
}

}  // namespace mstep::util
