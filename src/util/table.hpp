// ASCII table formatting for the benchmark harnesses.
//
// Every table/figure reproduction binary prints its rows through this
// formatter so the output layout matches across experiments and is easy to
// diff against the paper's tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mstep::util {

/// Column-aligned ASCII table.  Cells are strings; numeric helpers are
/// provided for common formats.  Rendering right-aligns numeric-looking
/// cells and left-aligns everything else.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row.  Rows shorter than the header are padded with "".
  void add_row(std::vector<std::string> row);

  /// Append a horizontal separator line.
  void add_separator();

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return header_.size(); }

  /// Render with a given title (title may be empty).
  [[nodiscard]] std::string to_string(const std::string& title = "") const;

  void print(std::ostream& os, const std::string& title = "") const;

  // --- cell formatting helpers -------------------------------------------
  static std::string num(double v, int precision = 3);
  static std::string fixed(double v, int precision = 3);
  static std::string integer(long long v);
  static std::string ratio(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector => separator
};

}  // namespace mstep::util
