// Wall-clock timing helper used by examples and benchmark drivers.
#pragma once

#include <chrono>

namespace mstep::util {

/// Monotonic stopwatch.  Construction starts the clock.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mstep::util
