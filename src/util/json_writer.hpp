// Tiny insertion-ordered JSON document builder.
//
// Every machine-readable artifact the repo emits — the BENCH_*.json files
// the CI perf gate parses, the mstep_solve driver report — is built
// through this one writer instead of hand-concatenated streams, so
// escaping, number formatting (shortest round-trip, via util::spec), and
// layout are uniform.  Flat containers (no nested array/object) print on
// one line; nested ones indent — which reproduces the benches'
// one-row-per-line array style while keeping driver reports readable.
#pragma once

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/spec.hpp"

namespace mstep::util {

class Json {
 public:
  /// null
  Json() = default;

  template <typename T,
            std::enable_if_t<std::is_arithmetic_v<T>, int> = 0>
  Json(T v) {  // NOLINT(google-explicit-constructor): literals as values
    if constexpr (std::is_same_v<T, bool>) {
      type_ = Type::kBool;
      bool_ = v;
    } else if constexpr (std::is_floating_point_v<T>) {
      type_ = Type::kDouble;
      double_ = static_cast<double>(v);
    } else {
      type_ = Type::kInt;
      int_ = static_cast<long long>(v);
    }
  }
  Json(std::string v) : type_(Type::kString), string_(std::move(v)) {}
  Json(const char* v) : Json(std::string(v)) {}

  [[nodiscard]] static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  /// Append to an array; returns *this for chaining.
  Json& push(Json v) {
    items_.push_back(std::move(v));
    return *this;
  }

  /// Set an object field (insertion-ordered; duplicate keys overwrite in
  /// place); returns *this for chaining.
  Json& set(const std::string& key, Json v) {
    for (auto& [k, old] : fields_) {
      if (k == key) {
        old = std::move(v);
        return *this;
      }
    }
    fields_.emplace_back(key, std::move(v));
    return *this;
  }

  void dump(std::ostream& out, int indent = 2) const {
    write(out, indent, 0);
    out << '\n';
  }

  [[nodiscard]] std::string dump_string(int indent = 2) const {
    std::ostringstream out;
    dump(out, indent);
    return out.str();
  }

  [[nodiscard]] static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

 private:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  /// A container with no container children prints on one line.
  [[nodiscard]] bool flat() const {
    for (const auto& v : items_) {
      if (v.type_ == Type::kArray || v.type_ == Type::kObject) return false;
    }
    for (const auto& [k, v] : fields_) {
      if (v.type_ == Type::kArray || v.type_ == Type::kObject) return false;
    }
    return true;
  }

  void write_scalar(std::ostream& out) const {
    switch (type_) {
      case Type::kNull: out << "null"; break;
      case Type::kBool: out << (bool_ ? "true" : "false"); break;
      case Type::kInt: out << int_; break;
      case Type::kDouble:
        // JSON has no NaN/Inf literals; report them as null.
        if (std::isfinite(double_)) {
          out << format_double(double_);
        } else {
          out << "null";
        }
        break;
      case Type::kString: out << '"' << escape(string_) << '"'; break;
      default: break;
    }
  }

  void write(std::ostream& out, int indent, int depth) const {
    if (type_ != Type::kArray && type_ != Type::kObject) {
      write_scalar(out);
      return;
    }
    const char open = type_ == Type::kArray ? '[' : '{';
    const char close = type_ == Type::kArray ? ']' : '}';
    const std::size_t count =
        type_ == Type::kArray ? items_.size() : fields_.size();
    if (count == 0) {
      out << open << close;
      return;
    }
    const bool one_line = flat();
    const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
    const std::string pad_close(static_cast<std::size_t>(indent) * depth, ' ');
    out << open;
    for (std::size_t i = 0; i < count; ++i) {
      if (one_line) {
        if (i > 0) out << ", ";
      } else {
        out << (i > 0 ? ",\n" : "\n") << pad;
      }
      if (type_ == Type::kObject) {
        out << '"' << escape(fields_[i].first) << "\": ";
        fields_[i].second.write(out, indent, depth + 1);
      } else {
        items_[i].write(out, indent, depth + 1);
      }
    }
    if (!one_line) out << '\n' << pad_close;
    out << close;
  }

  Type type_ = Type::kNull;
  bool bool_ = false;
  long long int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;                          // array
  std::vector<std::pair<std::string, Json>> fields_;  // object, ordered
};

}  // namespace mstep::util
