#include "util/cli.hpp"

#include <algorithm>
#include <stdexcept>

namespace mstep::util {

Cli::Cli(int argc, const char* const* argv, std::vector<std::string> allowed) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("expected --flag, got: " + arg);
    }
    arg = arg.substr(2);
    std::string value = "1";
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    if (std::find(allowed.begin(), allowed.end(), arg) == allowed.end()) {
      throw std::invalid_argument("unknown flag: --" + arg);
    }
    values_[arg] = value;
  }
}

bool Cli::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int Cli::get_int(const std::string& name, int fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stoi(it->second);
}

double Cli::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stod(it->second);
}

}  // namespace mstep::util
