#include "split/splitting.hpp"

#include <cassert>
#include <stdexcept>

#include "par/execution.hpp"

namespace mstep::split {

JacobiSplitting::JacobiSplitting(const la::CsrMatrix& k) {
  const Vec d = k.diagonal();
  inv_diag_.resize(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d[i] <= 0.0) {
      throw std::invalid_argument("JacobiSplitting: non-positive diagonal");
    }
    inv_diag_[i] = 1.0 / d[i];
  }
}

void JacobiSplitting::apply_pinv(const Vec& x, Vec& y) const {
  assert(x.size() == inv_diag_.size());
  y.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = inv_diag_[i] * x[i];
}

void JacobiSplitting::apply_pinv(const Vec& x, Vec& y,
                                 const par::Execution& ex) const {
  assert(x.size() == inv_diag_.size());
  ex.hadamard(inv_diag_, x, y);
}

SsorSplitting::SsorSplitting(const la::CsrMatrix& k, double omega)
    : k_(&k), diag_(k.diagonal()), omega_(omega) {
  if (omega <= 0.0 || omega >= 2.0) {
    throw std::invalid_argument("SsorSplitting: omega must be in (0, 2)");
  }
}

void SsorSplitting::apply_pinv(const Vec& x, Vec& y) const {
  const index_t n = k_->rows();
  assert(static_cast<index_t>(x.size()) == n);
  const auto& rp = k_->row_ptr();
  const auto& col = k_->col_idx();
  const auto& val = k_->values();

  // z = (D - omega L)^{-1} x  (forward substitution; L = strictly-lower
  // part with the sign convention K = D - L - U, so L_ij = -K_ij).  The
  // scratch persists across applies so repeated applications (the m-step
  // recurrence, the batch engine's inner loop) do not allocate.
  fwd_.resize(n);
  Vec& z = fwd_;
  for (index_t i = 0; i < n; ++i) {
    double s = x[i];
    for (index_t t = rp[i]; t < rp[i + 1] && col[t] < i; ++t) {
      s -= omega_ * val[t] * z[col[t]];
    }
    z[i] = s / diag_[i];
  }
  // w = D z, then y = omega (2 - omega) (D - omega U)^{-1} w (backward).
  y.resize(n);
  const double scale = omega_ * (2.0 - omega_);
  for (index_t i = n - 1; i >= 0; --i) {
    double s = diag_[i] * z[i];
    for (index_t t = rp[i + 1]; t-- > rp[i] && col[t] > i;) {
      s -= omega_ * val[t] * y[col[t]];
    }
    y[i] = s / diag_[i];
  }
  for (index_t i = 0; i < n; ++i) y[i] *= scale;
}

void RichardsonSplitting::apply_pinv(const Vec& x, Vec& y) const {
  assert(static_cast<index_t>(x.size()) == n_);
  y.resize(n_);
  for (index_t i = 0; i < n_; ++i) y[i] = theta_ * x[i];
}

void RichardsonSplitting::apply_pinv(const Vec& x, Vec& y,
                                     const par::Execution& ex) const {
  assert(static_cast<index_t>(x.size()) == n_);
  ex.scale_copy(theta_, x, y);
}

}  // namespace mstep::split
