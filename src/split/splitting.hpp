// Splittings K = P - Q of an SPD matrix (Section 2.1).
//
// A splitting supplies the P^{-1} application; the m-step preconditioner is
// a polynomial in G = P^{-1}Q composed with P^{-1}.  P must be symmetric for
// the parametrized preconditioner (2.6) to be symmetric; Jacobi and SSOR
// both qualify.
#pragma once

#include <memory>
#include <string>

#include "la/csr_matrix.hpp"
#include "la/vector.hpp"

namespace mstep::par {
class Execution;  // par/execution.hpp — the threaded kernel policy
}

namespace mstep::split {

/// Abstract splitting K = P - Q.  Implementations hold a reference to the
/// matrix; the caller keeps it alive.  An instance may own mutable scratch
/// (SSOR's forward-substitution vector), so one instance must not be
/// applied from several threads at once — concurrent users (the batch
/// engine) hold one instance per worker lane.
class Splitting {
 public:
  virtual ~Splitting() = default;

  [[nodiscard]] virtual index_t size() const = 0;

  /// y = P^{-1} x.
  virtual void apply_pinv(const Vec& x, Vec& y) const = 0;

  /// Execution-policy form: bitwise the same y as apply_pinv(x, y).  The
  /// elementwise splittings (Jacobi, Richardson) partition across `ex`'s
  /// threads; the base implementation — and SSOR, whose triangular solves
  /// are inherently row-sequential — ignores `ex` and runs serially.
  virtual void apply_pinv(const Vec& x, Vec& y, const par::Execution& ex) const {
    (void)ex;
    apply_pinv(x, y);
  }

  /// Human-readable name for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Jacobi splitting: P = D = diag(K).  The Dubois–Greenbaum–Rodrigue
/// truncated Neumann series preconditioner is the unparametrized m-step
/// method on this splitting.
class JacobiSplitting : public Splitting {
 public:
  explicit JacobiSplitting(const la::CsrMatrix& k);

  [[nodiscard]] index_t size() const override {
    return static_cast<index_t>(inv_diag_.size());
  }
  void apply_pinv(const Vec& x, Vec& y) const override;
  void apply_pinv(const Vec& x, Vec& y,
                  const par::Execution& ex) const override;
  [[nodiscard]] std::string name() const override { return "jacobi"; }

  [[nodiscard]] const Vec& inverse_diagonal() const { return inv_diag_; }

 private:
  Vec inv_diag_;
};

/// SSOR splitting (eq. 2.1):
///   P = (1 / (omega (2 - omega))) (D - omega L) D^{-1} (D - omega U)
/// where K = D - L - U.  apply_pinv runs a forward substitution, a diagonal
/// scaling and a backward substitution, row-sequentially in the matrix's
/// ordering — so applying it to a multicolour-permuted matrix yields the
/// multicolour SSOR operator.
class SsorSplitting : public Splitting {
 public:
  SsorSplitting(const la::CsrMatrix& k, double omega = 1.0);

  [[nodiscard]] index_t size() const override { return k_->rows(); }
  void apply_pinv(const Vec& x, Vec& y) const override;
  [[nodiscard]] std::string name() const override { return "ssor"; }

  [[nodiscard]] double omega() const { return omega_; }

 private:
  const la::CsrMatrix* k_;
  Vec diag_;
  double omega_;
  mutable Vec fwd_;  // forward-substitution scratch, reused across applies
};

/// Richardson splitting P = (1/theta) I — mostly for tests (G = I - theta K
/// has a transparent spectrum).
class RichardsonSplitting : public Splitting {
 public:
  RichardsonSplitting(index_t n, double theta) : n_(n), theta_(theta) {}

  [[nodiscard]] index_t size() const override { return n_; }
  void apply_pinv(const Vec& x, Vec& y) const override;
  void apply_pinv(const Vec& x, Vec& y,
                  const par::Execution& ex) const override;
  [[nodiscard]] std::string name() const override { return "richardson"; }

 private:
  index_t n_;
  double theta_;
};

}  // namespace mstep::split
