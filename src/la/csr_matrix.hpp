// Compressed sparse row matrices and the COO assembly builder.
//
// CSR is the library's canonical sparse format.  The finite element
// assembler produces COO triplets; CooBuilder compresses (summing
// duplicates, as assembly requires) into CSR.  Symmetric permutation
// supports the multicolor reordering of Section 3 of the paper.
#pragma once

#include <vector>

#include "la/dense_matrix.hpp"
#include "la/vector.hpp"

namespace mstep::la {

/// Sparse matrix in CSR form.  Column indices within each row are sorted.
class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(index_t rows, index_t cols, std::vector<index_t> row_ptr,
            std::vector<index_t> col, std::vector<double> val);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] index_t nnz() const {
    return static_cast<index_t>(col_.size());
  }

  [[nodiscard]] const std::vector<index_t>& row_ptr() const { return row_ptr_; }
  [[nodiscard]] const std::vector<index_t>& col_idx() const { return col_; }
  [[nodiscard]] const std::vector<double>& values() const { return val_; }
  [[nodiscard]] std::vector<double>& values() { return val_; }

  /// Entry lookup (binary search within the row); 0 if absent.
  [[nodiscard]] double at(index_t i, index_t j) const;

  /// y = A x
  void multiply(const Vec& x, Vec& y) const;

  /// y = y - A x  (residual update form used in the CG loop)
  void multiply_sub(const Vec& x, Vec& y) const;

  /// r = b - A x
  void residual(const Vec& b, const Vec& x, Vec& r) const;

  /// Diagonal entries as a vector.  Throws if a diagonal entry is absent.
  [[nodiscard]] Vec diagonal() const;

  /// Symmetric permutation B = A(p, p): row/col i of B is row/col p[i] of A.
  [[nodiscard]] CsrMatrix permuted_symmetric(
      const std::vector<index_t>& perm) const;

  /// Exact transpose.
  [[nodiscard]] CsrMatrix transposed() const;

  /// Numerical symmetry check: max |A - A^T| entry.
  [[nodiscard]] double symmetry_error() const;

  /// Dense copy for verification on small systems.
  [[nodiscard]] DenseMatrix to_dense() const;

  /// Maximum number of nonzeros in any row (the paper's stencil bound: 14
  /// for the plane-stress plate).
  [[nodiscard]] index_t max_row_nnz() const;

  /// Number of distinct nonzero diagonals (k = j - i values present).
  [[nodiscard]] index_t num_nonzero_diagonals() const;

  /// Bandwidth: max |j - i| over the nonzero entries (0 for diagonal or
  /// empty matrices).  Reported as structure metadata by the mstep_solve
  /// driver; the DIA-layout decision itself is DiaMatrix::profitable,
  /// which counts distinct diagonals instead.
  [[nodiscard]] index_t bandwidth() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> row_ptr_;
  std::vector<index_t> col_;
  std::vector<double> val_;
};

/// Accumulates (i, j, v) triplets and compresses to CSR, summing duplicate
/// coordinates — the semantics of finite element assembly.
class CooBuilder {
 public:
  CooBuilder(index_t rows, index_t cols) : rows_(rows), cols_(cols) {}

  void add(index_t i, index_t j, double v);

  /// Number of raw (pre-compression) triplets.
  [[nodiscard]] std::size_t triplets() const { return i_.size(); }

  /// Compress to CSR.  Entries with |v| == 0 after summation are kept
  /// (structural zeros can matter for stencil censuses); pass drop_zeros
  /// to remove them.
  [[nodiscard]] CsrMatrix build(bool drop_zeros = false) const;

 private:
  index_t rows_;
  index_t cols_;
  std::vector<index_t> i_;
  std::vector<index_t> j_;
  std::vector<double> v_;
};

/// CSR identity.
[[nodiscard]] CsrMatrix csr_identity(index_t n);

}  // namespace mstep::la
