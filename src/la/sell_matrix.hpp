// SELL-C-sigma: the SIMD-friendly sliced sparse format (Kreutzer et al.),
// the third entry in the MatrixFormat registry after CSR and DIA.
//
// Rows are grouped into slices of C = 4 rows (one AVX2 double vector);
// within sorting windows of sigma rows, rows are ordered by descending
// length so slice-mates have similar lengths and padding stays small.
// Each slice stores its rows column-major — entry j of the row in lane r
// sits at val[slice_ptr[s] + j*C + r] — so the SpMV kernel walks j with
// all four lane-rows in one vector register, gathering x by column.
// Padding entries are (col = 0, val = 0) and masked out of the lane
// accumulators, never added.
//
// The kernel (simd::sell_spmv_slices) accumulates each lane-row's entries
// through the same fixed 8-lane schedule as the CSR row kernel, so SELL
// SpMV is BITWISE identical to CSR SpMV — the format changes memory
// layout and speed, never bits.  The occupancy probe `profitable` is what
// `--format=auto` consults after the DIA bandedness probe: SELL pays off
// when sigma-sorted padding is small, i.e. row lengths are locally
// uniform, which multicolour-permuted stencils and banded random systems
// both satisfy; a skewed matrix (one dense row per window) fails the
// probe and stays in CSR.
#pragma once

#include <cstddef>
#include <vector>

#include "la/csr_matrix.hpp"
#include "la/simd.hpp"
#include "la/vector.hpp"

namespace mstep::la {

class SellMatrix {
 public:
  /// C: rows per slice — one AVX2 vector of doubles.
  static constexpr index_t kSliceHeight =
      static_cast<index_t>(simd::kSellSlice);
  /// sigma: the row-sorting window, a multiple of C.  Sorting is local so
  /// the permutation stays cache-friendly; 64 keeps windows well inside L1
  /// while absorbing typical row-length jitter.
  static constexpr index_t kDefaultSigma = 64;
  /// Occupancy threshold for `profitable`: padded storage may exceed nnz
  /// by at most 25%.
  static constexpr double kDefaultMaxFill = 1.25;

  SellMatrix() = default;

  /// Convert from CSR.  `sigma` is clamped to at least kSliceHeight.
  [[nodiscard]] static SellMatrix from_csr(const CsrMatrix& a,
                                           index_t sigma = kDefaultSigma);

  /// Occupancy probe (no conversion): true when the sigma-sorted padded
  /// entry count is at most max_fill * nnz.  False for empty matrices.
  [[nodiscard]] static bool profitable(const CsrMatrix& a,
                                       double max_fill = kDefaultMaxFill,
                                       index_t sigma = kDefaultSigma);

  /// Padded-entries / nnz the probe compares against max_fill (inf-free:
  /// returns 0 for empty matrices).
  [[nodiscard]] static double fill_estimate(const CsrMatrix& a,
                                            index_t sigma = kDefaultSigma);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] index_t nnz() const { return nnz_; }
  [[nodiscard]] index_t num_slices() const {
    return static_cast<index_t>(slice_ptr_.size()) - 1;
  }
  /// Stored entries including padding — the storage cost of the layout.
  [[nodiscard]] std::size_t stored_values() const { return val_.size(); }
  [[nodiscard]] double fill_ratio() const {
    return nnz_ > 0 ? static_cast<double>(val_.size()) /
                          static_cast<double>(nnz_)
                    : 0.0;
  }
  /// Cached from the CSR source — the kernel-log pricing of an SpMV.
  [[nodiscard]] index_t num_nonzero_diagonals() const { return ndiags_; }

  /// slot -> global row (slot = slice * C + lane); -1 marks padding slots
  /// past the last row.
  [[nodiscard]] const std::vector<index_t>& permutation() const {
    return perm_;
  }

  /// y = A x  (bitwise identical to CsrMatrix::multiply)
  void multiply(const Vec& x, Vec& y) const;

  /// y = y - A x
  void multiply_sub(const Vec& x, Vec& y) const;

  /// Non-owning kernel view; valid while this matrix lives.
  [[nodiscard]] simd::SellView view() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t nnz_ = 0;
  index_t ndiags_ = 0;
  std::vector<double> val_;             // slice-column-major, padded
  std::vector<index_t> col_;            // same shape as val_
  std::vector<index_t> len_;            // per slot: real entries of its row
  std::vector<index_t> perm_;           // per slot: global row or -1
  std::vector<std::size_t> slice_ptr_;  // value offset per slice, +1 sentinel
};

/// SELL-layout storage of per-row SEGMENTS of a CSR matrix: the strictly-
/// lower / strictly-upper row parts of one colour class, which the
/// multicolor sweeps sum through simd::sell_neg_slices.  The slice layout
/// and kernel schedule are exactly SellMatrix's, so each scattered sum is
/// bitwise -row_dot over that row's segment; `perm` carries GLOBAL row ids,
/// letting the kernel write straight into row-indexed scratch.  This is
/// what turns the sweep's short per-row sums — too short for a single-row
/// vector kernel to win — into 4-rows-at-a-time vector work, legal only
/// because the multicolor ordering makes rows of a class independent.
class SellSegments {
 public:
  SellSegments() = default;

  /// Rows [row_begin, row_end) of `a`, row i contributing its CSR entries
  /// [seg_begin[i], seg_end[i]); both arrays are indexed by global row id
  /// (pass row_ptr().data() / the RowSplits arrays directly).
  [[nodiscard]] static SellSegments build(
      const CsrMatrix& a, const index_t* seg_begin, const index_t* seg_end,
      index_t row_begin, index_t row_end,
      index_t sigma = SellMatrix::kDefaultSigma);

  [[nodiscard]] index_t num_slices() const {
    return slice_ptr_.empty() ? 0
                              : static_cast<index_t>(slice_ptr_.size()) - 1;
  }
  /// Stored entries including padding — the sweep bench's traffic model.
  [[nodiscard]] std::size_t stored_values() const { return val_.size(); }

  /// Non-owning kernel view; valid while this object lives.
  [[nodiscard]] simd::SellView view() const;

 private:
  std::vector<double> val_;
  std::vector<index_t> col_;
  std::vector<index_t> len_;
  std::vector<index_t> perm_;
  std::vector<std::size_t> slice_ptr_;
};

}  // namespace mstep::la
