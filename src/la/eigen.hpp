// Eigenvalue estimation for sparse operators.
//
// The parametrized preconditioner needs the interval [lambda_1, lambda_n]
// containing the spectrum of P^{-1}K (Section 2.2); the condition-number
// studies (Adams 1982 results quoted in Section 2.1) need extreme
// eigenvalues of the preconditioned operator M^{-1}K.  Both are served by
// a matrix-free Lanczos with an optional preconditioner inner product, plus
// a power method and Gershgorin bounds as cheap cross-checks.
#pragma once

#include <functional>
#include <vector>

#include "la/csr_matrix.hpp"
#include "la/vector.hpp"

namespace mstep::la {

/// Matrix-free linear operator y = A x.
using LinOp = std::function<void(const Vec& x, Vec& y)>;

/// Eigenvalues of a symmetric tridiagonal matrix (diagonal `a`, off-diagonal
/// `b` with b[i] between rows i and i+1), sorted ascending.  Bisection on
/// Sturm sequences — unconditionally robust for the small matrices Lanczos
/// produces.
[[nodiscard]] std::vector<double> tridiagonal_eigenvalues(
    const std::vector<double>& a, const std::vector<double>& b);

struct PowerResult {
  double eigenvalue = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Power method for the dominant eigenvalue of a symmetric operator.
[[nodiscard]] PowerResult power_method(const LinOp& op, index_t n,
                                       int max_iter = 2000, double tol = 1e-10,
                                       std::uint64_t seed = 7);

struct SpectrumEstimate {
  double lambda_min = 0.0;
  double lambda_max = 0.0;
  int lanczos_steps = 0;
  [[nodiscard]] double condition() const { return lambda_max / lambda_min; }
};

/// Plain Lanczos extreme-eigenvalue estimates for a symmetric operator.
[[nodiscard]] SpectrumEstimate lanczos_extreme(const LinOp& op, index_t n,
                                               int steps = 60,
                                               std::uint64_t seed = 11);

/// Preconditioned Lanczos: extreme eigenvalues of M^{-1} A where A is SPD
/// and `minv` applies M^{-1} (M SPD).  Works in the M-inner product, so only
/// M^{-1} applications are needed — exactly what a Preconditioner provides.
[[nodiscard]] SpectrumEstimate lanczos_extreme_preconditioned(
    const LinOp& a_op, const LinOp& minv, index_t n, int steps = 60,
    std::uint64_t seed = 13);

/// Gershgorin interval [lo, hi] enclosing the spectrum of a CSR matrix.
[[nodiscard]] std::pair<double, double> gershgorin_interval(
    const CsrMatrix& a);

}  // namespace mstep::la
