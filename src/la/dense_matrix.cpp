#include "la/dense_matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace mstep::la {

DenseMatrix DenseMatrix::identity(index_t n) {
  DenseMatrix m(n, n);
  for (index_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vec DenseMatrix::multiply(const Vec& x) const {
  assert(static_cast<index_t>(x.size()) == cols_);
  Vec y(rows_, 0.0);
  for (index_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (index_t j = 0; j < cols_; ++j) s += (*this)(i, j) * x[j];
    y[i] = s;
  }
  return y;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  assert(cols_ == other.rows_);
  DenseMatrix c(rows_, other.cols_);
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (index_t j = 0; j < other.cols_; ++j) {
        c(i, j) += aik * other(k, j);
      }
    }
  }
  return c;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix t(cols_, rows_);
  for (index_t i = 0; i < rows_; ++i)
    for (index_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

void DenseMatrix::add_scaled(double alpha, const DenseMatrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t k = 0; k < data_.size(); ++k)
    data_[k] += alpha * other.data_[k];
}

bool DenseMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (index_t i = 0; i < rows_; ++i)
    for (index_t j = i + 1; j < cols_; ++j)
      if (std::abs((*this)(i, j) - (*this)(j, i)) > tol) return false;
  return true;
}

double DenseMatrix::max_abs_diff(const DenseMatrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double m = 0.0;
  for (std::size_t k = 0; k < data_.size(); ++k)
    m = std::max(m, std::abs(data_[k] - other.data_[k]));
  return m;
}

double DenseMatrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

Vec solve_lu(DenseMatrix a, Vec b) {
  const index_t n = a.rows();
  if (n != a.cols() || static_cast<index_t>(b.size()) != n) {
    throw std::invalid_argument("solve_lu: dimension mismatch");
  }
  std::vector<index_t> piv(n);
  for (index_t i = 0; i < n; ++i) piv[i] = i;

  for (index_t k = 0; k < n; ++k) {
    // Partial pivoting.
    index_t p = k;
    double best = std::abs(a(k, k));
    for (index_t i = k + 1; i < n; ++i) {
      if (std::abs(a(i, k)) > best) {
        best = std::abs(a(i, k));
        p = i;
      }
    }
    if (best < 1e-300) throw std::runtime_error("solve_lu: singular matrix");
    if (p != k) {
      for (index_t j = 0; j < n; ++j) std::swap(a(k, j), a(p, j));
      std::swap(b[k], b[p]);
    }
    for (index_t i = k + 1; i < n; ++i) {
      const double l = a(i, k) / a(k, k);
      a(i, k) = l;
      for (index_t j = k + 1; j < n; ++j) a(i, j) -= l * a(k, j);
      b[i] -= l * b[k];
    }
  }
  // Back substitution.
  Vec x(n);
  for (index_t i = n - 1; i >= 0; --i) {
    double s = b[i];
    for (index_t j = i + 1; j < n; ++j) s -= a(i, j) * x[j];
    x[i] = s / a(i, i);
  }
  return x;
}

DenseMatrix cholesky(const DenseMatrix& a) {
  const index_t n = a.rows();
  if (n != a.cols()) throw std::invalid_argument("cholesky: not square");
  DenseMatrix l(n, n);
  for (index_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (index_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (d <= 0.0) throw std::runtime_error("cholesky: not positive definite");
    l(j, j) = std::sqrt(d);
    for (index_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (index_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return l;
}

Vec solve_cholesky(const DenseMatrix& a, const Vec& b) {
  const index_t n = a.rows();
  DenseMatrix l = cholesky(a);
  Vec y(n);
  for (index_t i = 0; i < n; ++i) {
    double s = b[i];
    for (index_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  Vec x(n);
  for (index_t i = n - 1; i >= 0; --i) {
    double s = y[i];
    for (index_t k = i + 1; k < n; ++k) s -= l(k, i) * x[k];
    x[i] = s / l(i, i);
  }
  return x;
}

std::vector<double> symmetric_eigenvalues(DenseMatrix a, int max_sweeps) {
  const index_t n = a.rows();
  if (n != a.cols()) {
    throw std::invalid_argument("symmetric_eigenvalues: not square");
  }
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (index_t i = 0; i < n; ++i)
      for (index_t j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    if (off < 1e-26) break;

    for (index_t p = 0; p < n; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (index_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (index_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
      }
    }
  }
  std::vector<double> ev(n);
  for (index_t i = 0; i < n; ++i) ev[i] = a(i, i);
  std::sort(ev.begin(), ev.end());
  return ev;
}

}  // namespace mstep::la
