// Polynomial arithmetic in the monomial basis, plus Chebyshev machinery.
//
// The parametrized m-step preconditioner (eq. 2.6 of the paper) is a
// polynomial alpha_0 + alpha_1 G + ... + alpha_{m-1} G^{m-1} in the
// iteration matrix G = P^{-1} Q.  Choosing the alphas is a polynomial
// approximation problem: make s(lambda) = lambda * p(1 - lambda) close to 1
// on the spectrum interval.  This module supplies the basis changes and the
// Chebyshev min-max construction.
#pragma once

#include <vector>

namespace mstep::la {

/// Polynomial with coefficients c[0] + c[1] x + c[2] x^2 + ...
class Polynomial {
 public:
  Polynomial() : c_{0.0} {}
  explicit Polynomial(std::vector<double> coeffs);

  /// Degree (0 for the zero polynomial).
  [[nodiscard]] int degree() const { return static_cast<int>(c_.size()) - 1; }
  [[nodiscard]] const std::vector<double>& coeffs() const { return c_; }

  [[nodiscard]] double operator()(double x) const;  // Horner evaluation

  [[nodiscard]] Polynomial operator+(const Polynomial& o) const;
  [[nodiscard]] Polynomial operator-(const Polynomial& o) const;
  [[nodiscard]] Polynomial operator*(const Polynomial& o) const;
  [[nodiscard]] Polynomial operator*(double s) const;

  /// Composition p(a + b x) — substitute a linear map for x.
  [[nodiscard]] Polynomial compose_linear(double a, double b) const;

  /// Derivative p'.
  [[nodiscard]] Polynomial derivative() const;

  /// Divide by x, i.e. return q with p(x) = x q(x).  Throws if p(0) is not
  /// (numerically) zero beyond `tol`.
  [[nodiscard]] Polynomial divide_by_x(double tol = 1e-9) const;

  /// Drop trailing coefficients with |c| <= tol.
  void trim(double tol = 0.0);

  /// Monomials: x^k.
  static Polynomial monomial(int k, double coeff = 1.0);

 private:
  std::vector<double> c_;
};

/// Chebyshev polynomial of the first kind T_n on [-1, 1], as a monomial-basis
/// Polynomial (exact integer coefficients via the recurrence).
[[nodiscard]] Polynomial chebyshev_t(int n);

/// Evaluate T_n(x) directly (stable also for |x| > 1, via cosh form).
[[nodiscard]] double chebyshev_t_value(int n, double x);

/// Re-express p(x) in powers of (1 - x):  returns a with
/// p(x) = sum_k a[k] (1 - x)^k.  This is the basis the m-step engine uses
/// (powers of G correspond to powers of (1 - lambda) for Richardson-type
/// splittings).
[[nodiscard]] std::vector<double> to_one_minus_x_basis(const Polynomial& p);

/// Inverse of the above: given alpha (coefficients in powers of (1-x)),
/// return the monomial-basis polynomial.
[[nodiscard]] Polynomial from_one_minus_x_basis(const std::vector<double>& a);

}  // namespace mstep::la
