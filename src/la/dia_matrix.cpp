#include "la/dia_matrix.hpp"

#include <algorithm>

#include "la/simd.hpp"
#include <cassert>
#include <map>
#include <stdexcept>

namespace mstep::la {

DiaMatrix DiaMatrix::from_csr(const CsrMatrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("DiaMatrix: matrix must be square");
  }
  DiaMatrix m;
  m.n_ = a.rows();

  std::map<index_t, std::vector<double>> diags;
  const auto& rp = a.row_ptr();
  const auto& col = a.col_idx();
  const auto& val = a.values();
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) {
      if (val[k] == 0.0) continue;
      const index_t off = col[k] - i;
      auto [it, inserted] = diags.try_emplace(off);
      if (inserted) it->second.assign(m.n_, 0.0);
      it->second[i] = val[k];
    }
  }
  m.offsets_.reserve(diags.size());
  m.diag_.reserve(diags.size());
  for (auto& [off, d] : diags) {
    m.offsets_.push_back(off);
    m.diag_.push_back(std::move(d));
  }
  return m;
}

bool DiaMatrix::profitable(const CsrMatrix& a, double max_fill) {
  if (a.rows() != a.cols() || a.nnz() == 0) return false;
  const double stored = static_cast<double>(a.num_nonzero_diagonals()) *
                        static_cast<double>(a.rows());
  return stored <= max_fill * static_cast<double>(a.nnz());
}

void DiaMatrix::multiply(const Vec& x, Vec& y) const {
  assert(static_cast<index_t>(x.size()) == n_);
  y.assign(n_, 0.0);
  for (std::size_t d = 0; d < offsets_.size(); ++d) {
    const index_t off = offsets_[d];
    const std::vector<double>& v = diag_[d];
    const index_t lo = std::max<index_t>(0, -off);
    const index_t hi = std::min<index_t>(n_, n_ - off);
    // Unit-stride triad: y[i] += v[i] * x[i + off]  — the vectorizable form.
    simd::dia_triad(v.data(), x.data(), y.data(), lo, hi, off,
                    /*subtract=*/false);
  }
}

void DiaMatrix::multiply_sub(const Vec& x, Vec& y) const {
  assert(static_cast<index_t>(x.size()) == n_);
  assert(static_cast<index_t>(y.size()) == n_);
  for (std::size_t d = 0; d < offsets_.size(); ++d) {
    const index_t off = offsets_[d];
    const std::vector<double>& v = diag_[d];
    const index_t lo = std::max<index_t>(0, -off);
    const index_t hi = std::min<index_t>(n_, n_ - off);
    simd::dia_triad(v.data(), x.data(), y.data(), lo, hi, off,
                    /*subtract=*/true);
  }
}

}  // namespace mstep::la
