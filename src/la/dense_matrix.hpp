// Small dense matrices.
//
// Used for element stiffness blocks, parameter-fitting normal equations,
// reference direct solves in tests, and dense spectral verification of the
// preconditioned operators on small problems.
#pragma once

#include <cstddef>
#include <vector>

#include "la/vector.hpp"

namespace mstep::la {

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(index_t rows, index_t cols, double value = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, value) {}

  static DenseMatrix identity(index_t n);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }

  double& operator()(index_t i, index_t j) {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }
  double operator()(index_t i, index_t j) const {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }

  [[nodiscard]] const std::vector<double>& data() const { return data_; }

  /// y = A x
  [[nodiscard]] Vec multiply(const Vec& x) const;

  /// C = A B
  [[nodiscard]] DenseMatrix multiply(const DenseMatrix& other) const;

  [[nodiscard]] DenseMatrix transposed() const;

  /// A <- A + alpha * B
  void add_scaled(double alpha, const DenseMatrix& other);

  /// Symmetry check up to absolute tolerance.
  [[nodiscard]] bool is_symmetric(double tol = 1e-12) const;

  /// max |A_ij - B_ij|
  [[nodiscard]] double max_abs_diff(const DenseMatrix& other) const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b by Gaussian elimination with partial pivoting.
/// Throws std::runtime_error on (numerical) singularity.
[[nodiscard]] Vec solve_lu(DenseMatrix a, Vec b);

/// Cholesky factorization of an SPD matrix (lower factor).  Throws
/// std::runtime_error if the matrix is not positive definite.
[[nodiscard]] DenseMatrix cholesky(const DenseMatrix& a);

/// Solve SPD system via Cholesky.
[[nodiscard]] Vec solve_cholesky(const DenseMatrix& a, const Vec& b);

/// All eigenvalues of a symmetric matrix by the cyclic Jacobi rotation
/// method, sorted ascending.  O(n^3) — intended for verification on small
/// systems (n up to a few hundred).
[[nodiscard]] std::vector<double> symmetric_eigenvalues(DenseMatrix a,
                                                        int max_sweeps = 50);

}  // namespace mstep::la
