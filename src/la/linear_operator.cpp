#include "la/linear_operator.hpp"

#include "par/execution.hpp"

namespace mstep::la {

void LinearOperator::multiply(const Vec& x, Vec& y,
                              const par::Execution& exec) const {
  (void)exec;
  multiply(x, y);
}

void LinearOperator::multiply_sub(const Vec& x, Vec& y,
                                  const par::Execution& exec) const {
  (void)exec;
  multiply_sub(x, y);
}

void CsrOperator::multiply(const Vec& x, Vec& y,
                           const par::Execution& exec) const {
  exec.spmv(*a_, x, y);
}

void CsrOperator::multiply_sub(const Vec& x, Vec& y,
                               const par::Execution& exec) const {
  exec.spmv_sub(*a_, x, y);
}

void DiaOperator::multiply(const Vec& x, Vec& y,
                           const par::Execution& exec) const {
  exec.spmv(*a_, x, y);
}

void DiaOperator::multiply_sub(const Vec& x, Vec& y,
                               const par::Execution& exec) const {
  exec.spmv_sub(*a_, x, y);
}

void SellOperator::multiply(const Vec& x, Vec& y,
                            const par::Execution& exec) const {
  exec.spmv(*a_, x, y);
}

void SellOperator::multiply_sub(const Vec& x, Vec& y,
                                const par::Execution& exec) const {
  exec.spmv_sub(*a_, x, y);
}

}  // namespace mstep::la
