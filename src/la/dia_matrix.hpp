// Storage of a sparse matrix by diagonals and SpMV by diagonals —
// the Madsen, Rodrigue & Karush (1976) scheme the paper uses on the
// CYBER 203/205 (Section 3.1, structure (3.2)).
//
// After the six-colour ordering the stiffness matrix has a bounded number
// of nonzero diagonals; multiplying diagonal-by-diagonal turns SpMV into a
// short sequence of long vector triads — exactly what a memory-to-memory
// pipeline machine wants.  On modern CPUs the same layout is a unit-stride,
// branch-free kernel; bench_kernels compares it against CSR.
#pragma once

#include <vector>

#include "la/csr_matrix.hpp"
#include "la/vector.hpp"

namespace mstep::la {

/// Square sparse matrix stored by (generalized) diagonals.
///
/// Diagonal with offset k holds entries A(i, i+k).  Each diagonal is stored
/// at full length n with zeros outside its valid range, so the SpMV inner
/// loops have no per-diagonal index arithmetic beyond a start/stop clamp.
class DiaMatrix {
 public:
  DiaMatrix() = default;

  /// Convert from CSR, keeping every diagonal that holds at least one
  /// nonzero.  Throws if the matrix is not square.
  static DiaMatrix from_csr(const CsrMatrix& a);

  /// Bandedness probe: true when storing `a` by diagonals costs at most
  /// `max_fill` times its nonzero count (each diagonal is stored at full
  /// length n).  Multicolour-permuted stencils pass easily; a matrix with
  /// scattered structure fails and should stay in CSR.
  [[nodiscard]] static bool profitable(const CsrMatrix& a,
                                       double max_fill = 4.0);

  [[nodiscard]] index_t rows() const { return n_; }
  [[nodiscard]] index_t num_diagonals() const {
    return static_cast<index_t>(offsets_.size());
  }
  [[nodiscard]] const std::vector<index_t>& offsets() const {
    return offsets_;
  }
  /// diagonals()[d][i] = A(i, i + offsets()[d]); full length n per diagonal.
  [[nodiscard]] const std::vector<std::vector<double>>& diagonals() const {
    return diag_;
  }

  /// y = A x
  void multiply(const Vec& x, Vec& y) const;

  /// y = y - A x
  void multiply_sub(const Vec& x, Vec& y) const;

  /// Total stored doubles (n per diagonal) — the storage cost of the
  /// scheme, reported by the kernel bench.
  [[nodiscard]] std::size_t stored_values() const {
    return offsets_.size() * static_cast<std::size_t>(n_);
  }

 private:
  index_t n_ = 0;
  std::vector<index_t> offsets_;          // sorted diagonal offsets
  std::vector<std::vector<double>> diag_;  // diag_[d][i] = A(i, i+offset_d)
};

}  // namespace mstep::la
