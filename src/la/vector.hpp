// Dense vector kernels (BLAS-1 level).
//
// These are the exact operations Algorithm 1 of the paper is built from:
// axpy-style updates vectorize on the CYBER 203/205 and distribute on the
// Finite Element Machine; dot products are the expensive global reductions
// the m-step preconditioner is designed to amortize.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mstep {

/// Index type used across the library.  Problems in the paper's range
/// (N = 2ab up to ~13k; our benches go higher) fit comfortably in 32 bits.
using index_t = std::int32_t;

/// Dense vector of doubles.  A plain std::vector keeps the storage model
/// transparent (contiguous, like the CYBER's vector registers require).
using Vec = std::vector<double>;

namespace la {

/// Reduction block length shared by the serial kernels and the threaded
/// execution engine (par::Execution).  dot() computes each block with the
/// fixed 8-lane schedule of la/simd.hpp (bitwise identical on the scalar
/// and AVX2 paths) and combines the block partials in block order, so a
/// parallel reduction that computes the same per-block partials reproduces
/// the serial result BITWISE for any thread count.  A multiple of
/// simd::kDotLanes, so lane phase is consistent across block boundaries.
inline constexpr std::size_t kReductionBlock = 1024;

namespace detail {
/// Fixed-8-lane partial sum of x[i] * y[i] over [begin, end) — the
/// per-block kernel of the deterministic reduction (simd::dot_block).
[[nodiscard]] double dot_range(const Vec& x, const Vec& y, std::size_t begin,
                               std::size_t end);
}  // namespace detail

/// y <- a*x + y
void axpy(double a, const Vec& x, Vec& y);

/// y <- x + b*y   (the "xpay" update used for the CG direction p)
void xpay(const Vec& x, double b, Vec& y);

/// w <- a*x + b*y
void waxpby(double a, const Vec& x, double b, const Vec& y, Vec& w);

/// x <- a*x
void scale(double a, Vec& x);

/// Euclidean inner product (x, y) = x^T y, computed as the deterministic
/// blocked reduction described at kReductionBlock.
[[nodiscard]] double dot(const Vec& x, const Vec& y);

/// 2-norm.
[[nodiscard]] double nrm2(const Vec& x);

/// Infinity norm — the paper's Algorithm 1 stopping test uses
/// |u^{k+1} - u^k|_inf < eps.
[[nodiscard]] double norm_inf(const Vec& x);

/// Infinity norm of (x - y) without forming the difference.
[[nodiscard]] double diff_norm_inf(const Vec& x, const Vec& y);

/// x <- value everywhere.
void fill(Vec& x, double value);

/// w <- x - y
void sub(const Vec& x, const Vec& y, Vec& w);

/// w <- x + y
void add(const Vec& x, const Vec& y, Vec& w);

/// Elementwise product w <- x .* y (diagonal-matrix application).
void hadamard(const Vec& x, const Vec& y, Vec& w);

}  // namespace la
}  // namespace mstep
