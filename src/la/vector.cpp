#include "la/vector.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "la/simd.hpp"

// Every BLAS-1 kernel delegates to the SIMD layer (la/simd.hpp): one
// runtime-dispatched implementation — portable twin or AVX2, bitwise
// identical — serves the serial path here and the threaded chunks in
// par::Execution alike.

namespace mstep::la {

void axpy(double a, const Vec& x, Vec& y) {
  assert(x.size() == y.size());
  simd::axpy(a, x.data(), y.data(), x.size());
}

void xpay(const Vec& x, double b, Vec& y) {
  assert(x.size() == y.size());
  simd::xpay(x.data(), b, y.data(), x.size());
}

void waxpby(double a, const Vec& x, double b, const Vec& y, Vec& w) {
  assert(x.size() == y.size());
  w.resize(x.size());
  simd::waxpby(a, x.data(), b, y.data(), w.data(), x.size());
}

void scale(double a, Vec& x) { simd::scale_copy(a, x.data(), x.data(), x.size()); }

namespace detail {

double dot_range(const Vec& x, const Vec& y, std::size_t begin,
                 std::size_t end) {
  return simd::dot_block(x.data() + begin, y.data() + begin, end - begin);
}

}  // namespace detail

double dot(const Vec& x, const Vec& y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  double s = 0.0;
  for (std::size_t b = 0; b < n; b += kReductionBlock) {
    s += detail::dot_range(x, y, b, std::min(n, b + kReductionBlock));
  }
  return s;
}

double nrm2(const Vec& x) { return std::sqrt(dot(x, x)); }

double norm_inf(const Vec& x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

double diff_norm_inf(const Vec& x, const Vec& y) {
  assert(x.size() == y.size());
  double m = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::abs(x[i] - y[i]));
  return m;
}

void fill(Vec& x, double value) {
  for (auto& v : x) v = value;
}

void sub(const Vec& x, const Vec& y, Vec& w) {
  assert(x.size() == y.size());
  w.resize(x.size());
  simd::vsub(x.data(), y.data(), w.data(), x.size());
}

void add(const Vec& x, const Vec& y, Vec& w) {
  assert(x.size() == y.size());
  w.resize(x.size());
  simd::vadd(x.data(), y.data(), w.data(), x.size());
}

void hadamard(const Vec& x, const Vec& y, Vec& w) {
  assert(x.size() == y.size());
  w.resize(x.size());
  simd::hadamard(x.data(), y.data(), w.data(), x.size());
}

}  // namespace mstep::la
