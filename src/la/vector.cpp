#include "la/vector.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mstep::la {

void axpy(double a, const Vec& x, Vec& y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void xpay(const Vec& x, double b, Vec& y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i] + b * y[i];
}

void waxpby(double a, const Vec& x, double b, const Vec& y, Vec& w) {
  assert(x.size() == y.size());
  w.resize(x.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) w[i] = a * x[i] + b * y[i];
}

void scale(double a, Vec& x) {
  for (auto& v : x) v *= a;
}

namespace detail {

double dot_range(const Vec& x, const Vec& y, std::size_t begin,
                 std::size_t end) {
  double s = 0.0;
  for (std::size_t i = begin; i < end; ++i) s += x[i] * y[i];
  return s;
}

}  // namespace detail

double dot(const Vec& x, const Vec& y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  double s = 0.0;
  for (std::size_t b = 0; b < n; b += kReductionBlock) {
    s += detail::dot_range(x, y, b, std::min(n, b + kReductionBlock));
  }
  return s;
}

double nrm2(const Vec& x) { return std::sqrt(dot(x, x)); }

double norm_inf(const Vec& x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

double diff_norm_inf(const Vec& x, const Vec& y) {
  assert(x.size() == y.size());
  double m = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::abs(x[i] - y[i]));
  return m;
}

void fill(Vec& x, double value) {
  for (auto& v : x) v = value;
}

void sub(const Vec& x, const Vec& y, Vec& w) {
  assert(x.size() == y.size());
  w.resize(x.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) w[i] = x[i] - y[i];
}

void add(const Vec& x, const Vec& y, Vec& w) {
  assert(x.size() == y.size());
  w.resize(x.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) w[i] = x[i] + y[i];
}

void hadamard(const Vec& x, const Vec& y, Vec& w) {
  assert(x.size() == y.size());
  w.resize(x.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) w[i] = x[i] * y[i];
}

}  // namespace mstep::la
