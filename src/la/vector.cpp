#include "la/vector.hpp"

#include <cassert>
#include <cmath>

namespace mstep::la {

void axpy(double a, const Vec& x, Vec& y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void xpay(const Vec& x, double b, Vec& y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i] + b * y[i];
}

void waxpby(double a, const Vec& x, double b, const Vec& y, Vec& w) {
  assert(x.size() == y.size());
  w.resize(x.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) w[i] = a * x[i] + b * y[i];
}

void scale(double a, Vec& x) {
  for (auto& v : x) v *= a;
}

double dot(const Vec& x, const Vec& y) {
  assert(x.size() == y.size());
  double s = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

double nrm2(const Vec& x) { return std::sqrt(dot(x, x)); }

double norm_inf(const Vec& x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

double diff_norm_inf(const Vec& x, const Vec& y) {
  assert(x.size() == y.size());
  double m = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::abs(x[i] - y[i]));
  return m;
}

void fill(Vec& x, double value) {
  for (auto& v : x) v = value;
}

void sub(const Vec& x, const Vec& y, Vec& w) {
  assert(x.size() == y.size());
  w.resize(x.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) w[i] = x[i] - y[i];
}

void add(const Vec& x, const Vec& y, Vec& w) {
  assert(x.size() == y.size());
  w.resize(x.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) w[i] = x[i] + y[i];
}

void hadamard(const Vec& x, const Vec& y, Vec& w) {
  assert(x.size() == y.size());
  w.resize(x.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) w[i] = x[i] * y[i];
}

}  // namespace mstep::la
