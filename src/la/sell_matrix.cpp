#include "la/sell_matrix.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace mstep::la {

namespace {

constexpr index_t kC = SellMatrix::kSliceHeight;

/// Slot order after sigma-window sorting: within each window rows are
/// ordered by descending length (ties by ascending row id, so the layout
/// is deterministic); windows themselves stay in place.
std::vector<index_t> sorted_slots(const CsrMatrix& a, index_t sigma) {
  const index_t n = a.rows();
  const auto& rp = a.row_ptr();
  std::vector<index_t> slots(n);
  std::iota(slots.begin(), slots.end(), 0);
  for (index_t w = 0; w < n; w += sigma) {
    const index_t e = std::min(n, w + sigma);
    std::sort(slots.begin() + w, slots.begin() + e,
              [&](index_t i, index_t j) {
                const index_t li = rp[i + 1] - rp[i];
                const index_t lj = rp[j + 1] - rp[j];
                if (li != lj) return li > lj;
                return i < j;
              });
  }
  return slots;
}

}  // namespace

SellMatrix SellMatrix::from_csr(const CsrMatrix& a, index_t sigma) {
  sigma = std::max(sigma, kC);
  SellMatrix m;
  m.rows_ = a.rows();
  m.cols_ = a.cols();
  m.nnz_ = a.nnz();
  m.ndiags_ = a.num_nonzero_diagonals();

  const auto& rp = a.row_ptr();
  const auto& col = a.col_idx();
  const auto& val = a.values();

  const std::vector<index_t> slots = sorted_slots(a, sigma);
  const index_t num_slices = (m.rows_ + kC - 1) / kC;

  m.perm_.assign(static_cast<std::size_t>(num_slices) * kC, -1);
  m.len_.assign(static_cast<std::size_t>(num_slices) * kC, 0);
  m.slice_ptr_.assign(static_cast<std::size_t>(num_slices) + 1, 0);

  for (index_t s = 0; s < num_slices; ++s) {
    index_t width = 0;
    for (index_t r = 0; r < kC; ++r) {
      const index_t slot = s * kC + r;
      if (slot >= m.rows_) break;
      const index_t g = slots[slot];
      const index_t length = rp[g + 1] - rp[g];
      m.perm_[slot] = g;
      m.len_[slot] = length;
      width = std::max(width, length);
    }
    m.slice_ptr_[s + 1] =
        m.slice_ptr_[s] + static_cast<std::size_t>(width) * kC;
  }

  // Padding entries stay (col = 0, val = 0): the gather reads x[0] and the
  // kernel masks the product out of the accumulators.
  m.val_.assign(m.slice_ptr_.back(), 0.0);
  m.col_.assign(m.slice_ptr_.back(), 0);
  for (index_t s = 0; s < num_slices; ++s) {
    const std::size_t base = m.slice_ptr_[s];
    for (index_t r = 0; r < kC; ++r) {
      const index_t slot = s * kC + r;
      const index_t g = m.perm_[slot];
      if (g < 0) continue;
      for (index_t j = 0; j < m.len_[slot]; ++j) {
        const std::size_t at = base + static_cast<std::size_t>(j) * kC + r;
        m.val_[at] = val[rp[g] + j];
        m.col_[at] = col[rp[g] + j];
      }
    }
  }
  return m;
}

double SellMatrix::fill_estimate(const CsrMatrix& a, index_t sigma) {
  if (a.nnz() == 0) return 0.0;
  sigma = std::max(sigma, kC);
  const index_t n = a.rows();
  const std::vector<index_t> slots = sorted_slots(a, sigma);
  const auto& rp = a.row_ptr();
  std::size_t padded = 0;
  for (index_t s = 0; s * kC < n; ++s) {
    index_t width = 0;
    for (index_t r = 0; r < kC && s * kC + r < n; ++r) {
      const index_t g = slots[s * kC + r];
      width = std::max(width, rp[g + 1] - rp[g]);
    }
    padded += static_cast<std::size_t>(width) * kC;
  }
  return static_cast<double>(padded) / static_cast<double>(a.nnz());
}

bool SellMatrix::profitable(const CsrMatrix& a, double max_fill,
                            index_t sigma) {
  if (a.nnz() == 0) return false;
  return fill_estimate(a, sigma) <= max_fill;
}

simd::SellView SellMatrix::view() const {
  simd::SellView v;
  v.val = val_.data();
  v.col = col_.data();
  v.len = len_.data();
  v.perm = perm_.data();
  v.slice_ptr = slice_ptr_.data();
  v.num_slices = num_slices();
  return v;
}

void SellMatrix::multiply(const Vec& x, Vec& y) const {
  assert(static_cast<index_t>(x.size()) == cols_);
  y.resize(rows_);  // every real row is written exactly once via perm
  simd::sell_spmv_slices(view(), x.data(), y.data(), 0, num_slices(),
                         /*subtract=*/false);
}

void SellMatrix::multiply_sub(const Vec& x, Vec& y) const {
  assert(static_cast<index_t>(x.size()) == cols_);
  assert(static_cast<index_t>(y.size()) == rows_);
  simd::sell_spmv_slices(view(), x.data(), y.data(), 0, num_slices(),
                         /*subtract=*/true);
}

SellSegments SellSegments::build(const CsrMatrix& a, const index_t* seg_begin,
                                 const index_t* seg_end, index_t row_begin,
                                 index_t row_end, index_t sigma) {
  sigma = std::max(sigma, kC);
  SellSegments m;
  const index_t n = row_end - row_begin;
  if (n <= 0) return m;

  const auto& col = a.col_idx();
  const auto& val = a.values();
  const auto seg_len = [&](index_t g) { return seg_end[g] - seg_begin[g]; };

  // Sigma-window sort by descending segment length (ties by ascending row
  // id), exactly as from_csr — deterministic and cache-local.
  std::vector<index_t> slots(n);
  std::iota(slots.begin(), slots.end(), row_begin);
  for (index_t w = 0; w < n; w += sigma) {
    const index_t e = std::min(n, w + sigma);
    std::sort(slots.begin() + w, slots.begin() + e,
              [&](index_t i, index_t j) {
                const index_t li = seg_len(i);
                const index_t lj = seg_len(j);
                if (li != lj) return li > lj;
                return i < j;
              });
  }

  const index_t num_slices = (n + kC - 1) / kC;
  m.perm_.assign(static_cast<std::size_t>(num_slices) * kC, -1);
  m.len_.assign(static_cast<std::size_t>(num_slices) * kC, 0);
  m.slice_ptr_.assign(static_cast<std::size_t>(num_slices) + 1, 0);

  for (index_t s = 0; s < num_slices; ++s) {
    index_t width = 0;
    for (index_t r = 0; r < kC; ++r) {
      const index_t slot = s * kC + r;
      if (slot >= n) break;
      const index_t g = slots[slot];
      m.perm_[slot] = g;
      m.len_[slot] = seg_len(g);
      width = std::max(width, m.len_[slot]);
    }
    m.slice_ptr_[s + 1] =
        m.slice_ptr_[s] + static_cast<std::size_t>(width) * kC;
  }

  m.val_.assign(m.slice_ptr_.back(), 0.0);
  m.col_.assign(m.slice_ptr_.back(), 0);
  for (index_t s = 0; s < num_slices; ++s) {
    const std::size_t base = m.slice_ptr_[s];
    for (index_t r = 0; r < kC; ++r) {
      const index_t slot = s * kC + r;
      const index_t g = m.perm_[slot];
      if (g < 0) continue;
      for (index_t j = 0; j < m.len_[slot]; ++j) {
        const std::size_t at = base + static_cast<std::size_t>(j) * kC + r;
        m.val_[at] = val[seg_begin[g] + j];
        m.col_[at] = col[seg_begin[g] + j];
      }
    }
  }
  return m;
}

simd::SellView SellSegments::view() const {
  simd::SellView v;
  v.val = val_.data();
  v.col = col_.data();
  v.len = len_.data();
  v.perm = perm_.data();
  v.slice_ptr = slice_ptr_.data();
  v.num_slices = num_slices();
  return v;
}

}  // namespace mstep::la
