#include "la/quadrature.hpp"

#include <cmath>
#include <stdexcept>

namespace mstep::la {

namespace {

/// Legendre P_n(x) and P_n'(x) by the three-term recurrence.
std::pair<double, double> legendre_pair(int n, double x) {
  double p0 = 1.0;
  double p1 = x;
  if (n == 0) return {p0, 0.0};
  for (int k = 2; k <= n; ++k) {
    const double p2 = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
    p0 = p1;
    p1 = p2;
  }
  // P_n'(x) = n (x P_n - P_{n-1}) / (x^2 - 1)
  const double dp = n * (x * p1 - p0) / (x * x - 1.0);
  return {p1, dp};
}

}  // namespace

QuadratureRule gauss_legendre(int n) {
  if (n < 1) throw std::invalid_argument("gauss_legendre: n must be >= 1");
  QuadratureRule rule;
  rule.nodes.resize(n);
  rule.weights.resize(n);
  const int half = (n + 1) / 2;
  for (int i = 0; i < half; ++i) {
    // Chebyshev-like initial guess, refined by Newton.
    double x = std::cos(M_PI * (i + 0.75) / (n + 0.5));
    double p = 0.0;
    double dp = 1.0;
    for (int it = 0; it < 100; ++it) {
      std::tie(p, dp) = legendre_pair(n, x);
      const double dx = -p / dp;
      x += dx;
      if (std::abs(dx) < 1e-15) break;
    }
    std::tie(p, dp) = legendre_pair(n, x);
    const double w = 2.0 / ((1.0 - x * x) * dp * dp);
    rule.nodes[i] = -x;
    rule.weights[i] = w;
    rule.nodes[n - 1 - i] = x;
    rule.weights[n - 1 - i] = w;
  }
  return rule;
}

double integrate(const std::function<double(double)>& f, double a, double b,
                 int n) {
  const QuadratureRule rule = gauss_legendre(n);
  const double mid = 0.5 * (a + b);
  const double halfw = 0.5 * (b - a);
  double s = 0.0;
  for (int i = 0; i < n; ++i) {
    s += rule.weights[i] * f(mid + halfw * rule.nodes[i]);
  }
  return s * halfw;
}

}  // namespace mstep::la
