#include "la/csr_matrix.hpp"

#include <algorithm>

#include "la/simd.hpp"
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>

namespace mstep::la {

CsrMatrix::CsrMatrix(index_t rows, index_t cols, std::vector<index_t> row_ptr,
                     std::vector<index_t> col, std::vector<double> val)
    : rows_(rows), cols_(cols), row_ptr_(std::move(row_ptr)),
      col_(std::move(col)), val_(std::move(val)) {
  if (static_cast<index_t>(row_ptr_.size()) != rows_ + 1) {
    throw std::invalid_argument("CsrMatrix: bad row_ptr length");
  }
  if (col_.size() != val_.size()) {
    throw std::invalid_argument("CsrMatrix: col/val length mismatch");
  }
}

double CsrMatrix::at(index_t i, index_t j) const {
  const auto* begin = col_.data() + row_ptr_[i];
  const auto* end = col_.data() + row_ptr_[i + 1];
  const auto* it = std::lower_bound(begin, end, j);
  if (it != end && *it == j) return val_[it - col_.data()];
  return 0.0;
}

void CsrMatrix::multiply(const Vec& x, Vec& y) const {
  assert(static_cast<index_t>(x.size()) == cols_);
  y.resize(rows_);
  simd::csr_spmv_rows(row_ptr_.data(), col_.data(), val_.data(), x.data(),
                      y.data(), 0, rows_, /*subtract=*/false);
}

void CsrMatrix::multiply_sub(const Vec& x, Vec& y) const {
  assert(static_cast<index_t>(x.size()) == cols_);
  assert(static_cast<index_t>(y.size()) == rows_);
  simd::csr_spmv_rows(row_ptr_.data(), col_.data(), val_.data(), x.data(),
                      y.data(), 0, rows_, /*subtract=*/true);
}

void CsrMatrix::residual(const Vec& b, const Vec& x, Vec& r) const {
  r = b;
  multiply_sub(x, r);
}

Vec CsrMatrix::diagonal() const {
  if (rows_ != cols_) throw std::invalid_argument("diagonal: not square");
  Vec d(rows_);
  for (index_t i = 0; i < rows_; ++i) {
    const double v = at(i, i);
    if (v == 0.0) throw std::runtime_error("diagonal: zero/absent entry");
    d[i] = v;
  }
  return d;
}

CsrMatrix CsrMatrix::permuted_symmetric(
    const std::vector<index_t>& perm) const {
  if (rows_ != cols_ ||
      static_cast<index_t>(perm.size()) != rows_) {
    throw std::invalid_argument("permuted_symmetric: bad perm");
  }
  // inv[old] = new position
  std::vector<index_t> inv(rows_);
  for (index_t i = 0; i < rows_; ++i) inv[perm[i]] = i;

  std::vector<index_t> rp(rows_ + 1, 0);
  for (index_t i = 0; i < rows_; ++i) {
    const index_t old = perm[i];
    rp[i + 1] = rp[i] + (row_ptr_[old + 1] - row_ptr_[old]);
  }
  std::vector<index_t> col(rp[rows_]);
  std::vector<double> val(rp[rows_]);
  for (index_t i = 0; i < rows_; ++i) {
    const index_t old = perm[i];
    index_t out = rp[i];
    for (index_t k = row_ptr_[old]; k < row_ptr_[old + 1]; ++k, ++out) {
      col[out] = inv[col_[k]];
      val[out] = val_[k];
    }
    // Restore sorted column order within the row.
    std::vector<index_t> order(rp[i + 1] - rp[i]);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
      return col[rp[i] + a] < col[rp[i] + b];
    });
    std::vector<index_t> c2(order.size());
    std::vector<double> v2(order.size());
    for (std::size_t t = 0; t < order.size(); ++t) {
      c2[t] = col[rp[i] + order[t]];
      v2[t] = val[rp[i] + order[t]];
    }
    std::copy(c2.begin(), c2.end(), col.begin() + rp[i]);
    std::copy(v2.begin(), v2.end(), val.begin() + rp[i]);
  }
  return CsrMatrix(rows_, cols_, std::move(rp), std::move(col),
                   std::move(val));
}

CsrMatrix CsrMatrix::transposed() const {
  std::vector<index_t> rp(cols_ + 1, 0);
  for (index_t k = 0; k < nnz(); ++k) rp[col_[k] + 1]++;
  for (index_t j = 0; j < cols_; ++j) rp[j + 1] += rp[j];
  std::vector<index_t> col(nnz());
  std::vector<double> val(nnz());
  std::vector<index_t> next(rp.begin(), rp.end() - 1);
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const index_t pos = next[col_[k]]++;
      col[pos] = i;
      val[pos] = val_[k];
    }
  }
  return CsrMatrix(cols_, rows_, std::move(rp), std::move(col),
                   std::move(val));
}

double CsrMatrix::symmetry_error() const {
  if (rows_ != cols_) return std::numeric_limits<double>::infinity();
  const CsrMatrix t = transposed();
  double err = 0.0;
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      err = std::max(err, std::abs(val_[k] - t.at(i, col_[k])));
    }
    for (index_t k = t.row_ptr_[i]; k < t.row_ptr_[i + 1]; ++k) {
      err = std::max(err, std::abs(t.val_[k] - at(i, t.col_[k])));
    }
  }
  return err;
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix d(rows_, cols_);
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      d(i, col_[k]) += val_[k];
    }
  }
  return d;
}

index_t CsrMatrix::max_row_nnz() const {
  index_t m = 0;
  for (index_t i = 0; i < rows_; ++i) {
    m = std::max(m, row_ptr_[i + 1] - row_ptr_[i]);
  }
  return m;
}

index_t CsrMatrix::num_nonzero_diagonals() const {
  std::set<index_t> offsets;
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      if (val_[k] != 0.0) offsets.insert(col_[k] - i);
    }
  }
  return static_cast<index_t>(offsets.size());
}

index_t CsrMatrix::bandwidth() const {
  index_t b = 0;
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      if (val_[k] != 0.0) b = std::max(b, std::abs(col_[k] - i));
    }
  }
  return b;
}

void CooBuilder::add(index_t i, index_t j, double v) {
  assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
  i_.push_back(i);
  j_.push_back(j);
  v_.push_back(v);
}

CsrMatrix CooBuilder::build(bool drop_zeros) const {
  const std::size_t nt = i_.size();
  std::vector<std::size_t> order(nt);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (i_[a] != i_[b]) return i_[a] < i_[b];
    return j_[a] < j_[b];
  });

  std::vector<index_t> rp(rows_ + 1, 0);
  std::vector<index_t> col;
  std::vector<double> val;
  col.reserve(nt);
  val.reserve(nt);

  std::size_t k = 0;
  for (index_t row = 0; row < rows_; ++row) {
    while (k < nt && i_[order[k]] == row) {
      const index_t c = j_[order[k]];
      double s = 0.0;
      while (k < nt && i_[order[k]] == row && j_[order[k]] == c) {
        s += v_[order[k]];
        ++k;
      }
      if (!drop_zeros || s != 0.0) {
        col.push_back(c);
        val.push_back(s);
      }
    }
    rp[row + 1] = static_cast<index_t>(col.size());
  }
  return CsrMatrix(rows_, cols_, std::move(rp), std::move(col),
                   std::move(val));
}

CsrMatrix csr_identity(index_t n) {
  std::vector<index_t> rp(n + 1);
  std::vector<index_t> col(n);
  std::vector<double> val(n, 1.0);
  for (index_t i = 0; i <= n; ++i) rp[i] = i;
  for (index_t i = 0; i < n; ++i) col[i] = i;
  return CsrMatrix(n, n, std::move(rp), std::move(col), std::move(val));
}

}  // namespace mstep::la
