// Explicit AVX2 implementations of the SIMD kernel layer.
//
// This is the ONLY translation unit compiled with -mavx2 (CMake sets the
// flag per-file), so AVX2 instructions can never leak into code that runs
// before the runtime dispatch check.  Every kernel mirrors its portable
// twin in la/simd.cpp operation-for-operation: the fixed-lane reduction
// schedules map lanes onto vector-register lanes, every product uses
// _mm256_mul_pd followed by _mm256_add_pd (never _mm256_fmadd_pd — the
// portable twin has no fused rounding, so neither may this path), and the
// scalar tails are the twin's tails verbatim.  See la/simd.hpp for the
// bitwise contract.
#include "la/simd_internal.hpp"

#if defined(MSTEP_HAS_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace mstep::la::simd::avx2 {

namespace {

/// Clears the sign bit — |x| for the max-reduction, matching std::abs.
inline __m256d abs_pd(__m256d v) {
  const __m256d mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  return _mm256_and_pd(v, mask);
}

/// x at four consecutive column indices, packed into one register.  Four
/// scalar loads + inserts beat the microcoded vgatherdpd on every current
/// x86 core for the short rows sparse systems have.
inline __m256d gather_pd(const double* x, const index_t* col) {
  return _mm256_set_pd(x[col[3]], x[col[2]], x[col[1]], x[col[0]]);
}

}  // namespace

double dot_block(const double* x, const double* y, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + kDotLanes <= n; i += kDotLanes) {
    acc0 = _mm256_add_pd(
        acc0, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(_mm256_loadu_pd(x + i + 4),
                                             _mm256_loadu_pd(y + i + 4)));
  }
  double lane[kDotLanes];
  _mm256_storeu_pd(lane, acc0);
  _mm256_storeu_pd(lane + 4, acc1);
  for (; i < n; ++i) lane[i % kDotLanes] += x[i] * y[i];
  double s = lane[0];
  for (std::size_t l = 1; l < kDotLanes; ++l) s += lane[l];
  return s;
}

double row_dot(const double* val, const index_t* col, const double* x,
               index_t begin, index_t end) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  index_t t = begin;
  for (; t + static_cast<index_t>(kRowLanes) <= end;
       t += static_cast<index_t>(kRowLanes)) {
    acc0 = _mm256_add_pd(
        acc0, _mm256_mul_pd(_mm256_loadu_pd(val + t), gather_pd(x, col + t)));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(_mm256_loadu_pd(val + t + 4),
                                             gather_pd(x, col + t + 4)));
  }
  double lane[kRowLanes];
  _mm256_storeu_pd(lane, acc0);
  _mm256_storeu_pd(lane + 4, acc1);
  for (; t < end; ++t) {
    lane[static_cast<std::size_t>(t - begin) % kRowLanes] +=
        val[t] * x[col[t]];
  }
  double s = lane[0];
  for (std::size_t l = 1; l < kRowLanes; ++l) s += lane[l];
  return s;
}

double step_update_max(double a, const double* p, double* u, std::size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  __m256d mv = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d step = _mm256_mul_pd(av, _mm256_loadu_pd(p + i));
    _mm256_storeu_pd(u + i, _mm256_add_pd(_mm256_loadu_pd(u + i), step));
    mv = _mm256_max_pd(mv, abs_pd(step));
  }
  double lane[4];
  _mm256_storeu_pd(lane, mv);
  // max over non-negative values is order-insensitive: any order yields
  // the same value (and bit pattern) as the twin's sequential scan.
  double mx = std::max(std::max(lane[0], lane[1]), std::max(lane[2], lane[3]));
  for (; i < n; ++i) {
    const double step = a * p[i];
    u[i] += step;
    mx = std::max(mx, std::abs(step));
  }
  return mx;
}

void axpy(double a, const double* x, double* y, std::size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i,
                     _mm256_add_pd(_mm256_loadu_pd(y + i),
                                   _mm256_mul_pd(av, _mm256_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void xpay(const double* x, double b, double* y, std::size_t n) {
  const __m256d bv = _mm256_set1_pd(b);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i,
                     _mm256_add_pd(_mm256_loadu_pd(x + i),
                                   _mm256_mul_pd(bv, _mm256_loadu_pd(y + i))));
  }
  for (; i < n; ++i) y[i] = x[i] + b * y[i];
}

void waxpby(double a, const double* x, double b, const double* y, double* w,
            std::size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  const __m256d bv = _mm256_set1_pd(b);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        w + i, _mm256_add_pd(_mm256_mul_pd(av, _mm256_loadu_pd(x + i)),
                             _mm256_mul_pd(bv, _mm256_loadu_pd(y + i))));
  }
  for (; i < n; ++i) w[i] = a * x[i] + b * y[i];
}

void scale_copy(double a, const double* x, double* y, std::size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i, _mm256_mul_pd(av, _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] = a * x[i];
}

void hadamard(const double* x, const double* y, double* w, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        w + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) w[i] = x[i] * y[i];
}

void vsub(const double* x, const double* y, double* w, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        w + i, _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) w[i] = x[i] - y[i];
}

void vadd(const double* x, const double* y, double* w, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        w + i, _mm256_add_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) w[i] = x[i] + y[i];
}

namespace {

/// Two independent rows with their instruction streams interleaved: the
/// joint loop keeps eight FP add chains in flight and halves the per-row
/// branch cost.  Each row still executes row_dot's exact operation
/// sequence (joint iterations are that row's leading 8-wide iterations in
/// order; finish() completes the remainder), so the results are bitwise
/// row_dot's.
inline void row_dot_pair(const double* val, const index_t* col,
                         const double* x, index_t b0, index_t e0, index_t b1,
                         index_t e1, double* s0, double* s1) {
  __m256d a00 = _mm256_setzero_pd();
  __m256d a01 = _mm256_setzero_pd();
  __m256d a10 = _mm256_setzero_pd();
  __m256d a11 = _mm256_setzero_pd();
  index_t t0 = b0;
  index_t t1 = b1;
  constexpr auto kL = static_cast<index_t>(kRowLanes);
  while (t0 + kL <= e0 && t1 + kL <= e1) {
    a00 = _mm256_add_pd(
        a00, _mm256_mul_pd(_mm256_loadu_pd(val + t0), gather_pd(x, col + t0)));
    a10 = _mm256_add_pd(
        a10, _mm256_mul_pd(_mm256_loadu_pd(val + t1), gather_pd(x, col + t1)));
    a01 = _mm256_add_pd(a01, _mm256_mul_pd(_mm256_loadu_pd(val + t0 + 4),
                                           gather_pd(x, col + t0 + 4)));
    a11 = _mm256_add_pd(a11, _mm256_mul_pd(_mm256_loadu_pd(val + t1 + 4),
                                           gather_pd(x, col + t1 + 4)));
    t0 += kL;
    t1 += kL;
  }
  auto finish = [&](__m256d lo, __m256d hi, index_t t, index_t begin,
                    index_t end) {
    for (; t + kL <= end; t += kL) {
      lo = _mm256_add_pd(
          lo, _mm256_mul_pd(_mm256_loadu_pd(val + t), gather_pd(x, col + t)));
      hi = _mm256_add_pd(hi, _mm256_mul_pd(_mm256_loadu_pd(val + t + 4),
                                           gather_pd(x, col + t + 4)));
    }
    double lane[kRowLanes];
    _mm256_storeu_pd(lane, lo);
    _mm256_storeu_pd(lane + 4, hi);
    for (; t < end; ++t) {
      lane[static_cast<std::size_t>(t - begin) % kRowLanes] +=
          val[t] * x[col[t]];
    }
    double s = lane[0];
    for (std::size_t l = 1; l < kRowLanes; ++l) s += lane[l];
    return s;
  };
  *s0 = finish(a00, a01, t0, b0, e0);
  *s1 = finish(a10, a11, t1, b1, e1);
}

}  // namespace

void csr_spmv_rows(const index_t* rp, const index_t* col, const double* val,
                   const double* x, double* y, index_t row_begin,
                   index_t row_end, bool subtract) {
  index_t i = row_begin;
  for (; i + 2 <= row_end; i += 2) {
    double s0;
    double s1;
    row_dot_pair(val, col, x, rp[i], rp[i + 1], rp[i + 1], rp[i + 2], &s0,
                 &s1);
    if (subtract) {
      y[i] -= s0;
      y[i + 1] -= s1;
    } else {
      y[i] = s0;
      y[i + 1] = s1;
    }
  }
  for (; i < row_end; ++i) {
    if (subtract) {
      y[i] -= row_dot(val, col, x, rp[i], rp[i + 1]);
    } else {
      y[i] = row_dot(val, col, x, rp[i], rp[i + 1]);
    }
  }
}

void dia_triad(const double* v, const double* x, double* y, index_t lo,
               index_t hi, index_t off, bool subtract) {
  index_t i = lo;
  if (subtract) {
    for (; i + 4 <= hi; i += 4) {
      _mm256_storeu_pd(
          y + i, _mm256_sub_pd(_mm256_loadu_pd(y + i),
                               _mm256_mul_pd(_mm256_loadu_pd(v + i),
                                             _mm256_loadu_pd(x + i + off))));
    }
    for (; i < hi; ++i) y[i] -= v[i] * x[i + off];
  } else {
    for (; i + 4 <= hi; i += 4) {
      _mm256_storeu_pd(
          y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                               _mm256_mul_pd(_mm256_loadu_pd(v + i),
                                             _mm256_loadu_pd(x + i + off))));
    }
    for (; i < hi; ++i) y[i] += v[i] * x[i + off];
  }
}

namespace {

/// Per-row 8-lane sums of one SELL slice.  Eight rotating accumulators —
/// entry j of every lane-row goes to acc[j mod 8] — reproduce row_dot's
/// intra-row schedule in all four slice rows simultaneously.
inline void slice_sums(const SellView& s, index_t sl, const double* x,
                       double sum[kSellSlice]) {
  constexpr auto kC = static_cast<index_t>(kSellSlice);
  const std::size_t base = s.slice_ptr[sl];
  const auto width =
      static_cast<index_t>((s.slice_ptr[sl + 1] - base) / kSellSlice);
  // Row lengths of this slice's 4 lanes, widened for the j < len mask.
  const __m256i len64 = _mm256_cvtepi32_epi64(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(s.len + sl * kC)));
  __m256d acc[kRowLanes] = {
      _mm256_setzero_pd(), _mm256_setzero_pd(), _mm256_setzero_pd(),
      _mm256_setzero_pd(), _mm256_setzero_pd(), _mm256_setzero_pd(),
      _mm256_setzero_pd(), _mm256_setzero_pd()};
  // Up to the shortest row of the slice every lane is live: no mask
  // needed, and the sigma sort makes this the bulk of the work.
  index_t shortest = s.len[sl * kC];
  for (index_t r = 1; r < kC; ++r) {
    shortest = std::min(shortest, s.len[sl * kC + r]);
  }
  index_t j = 0;
  for (; j < shortest; ++j) {
    const std::size_t at = base + static_cast<std::size_t>(j) * kSellSlice;
    const __m256d prod =
        _mm256_mul_pd(_mm256_loadu_pd(s.val + at), gather_pd(x, s.col + at));
    const std::size_t k = static_cast<std::size_t>(j) % kRowLanes;
    acc[k] = _mm256_add_pd(acc[k], prod);
  }
  for (; j < width; ++j) {
    const __m256d live = _mm256_castsi256_pd(
        _mm256_cmpgt_epi64(len64, _mm256_set1_epi64x(j)));
    const std::size_t at = base + static_cast<std::size_t>(j) * kSellSlice;
    const __m256d prod =
        _mm256_mul_pd(_mm256_loadu_pd(s.val + at), gather_pd(x, s.col + at));
    const std::size_t k = static_cast<std::size_t>(j) % kRowLanes;
    // Blend keeps the old accumulator in padded lanes — adding the pad's
    // 0.0 product would turn a -0.0 partial into +0.0 and break the
    // bitwise contract.
    acc[k] = _mm256_blendv_pd(acc[k], _mm256_add_pd(acc[k], prod), live);
  }
  double lane[kRowLanes][kSellSlice];
  for (std::size_t k = 0; k < kRowLanes; ++k) {
    _mm256_storeu_pd(lane[k], acc[k]);
  }
  for (index_t r = 0; r < kC; ++r) {
    double v = lane[0][r];
    for (std::size_t k = 1; k < kRowLanes; ++k) v += lane[k][r];
    sum[r] = v;
  }
}

}  // namespace

void sell_spmv_slices(const SellView& s, const double* x, double* y,
                      index_t slice_begin, index_t slice_end, bool subtract) {
  constexpr auto kC = static_cast<index_t>(kSellSlice);
  for (index_t sl = slice_begin; sl < slice_end; ++sl) {
    double sum[kSellSlice];
    slice_sums(s, sl, x, sum);
    for (index_t r = 0; r < kC; ++r) {
      const index_t g = s.perm[sl * kC + r];
      if (g < 0) continue;
      if (subtract) {
        y[g] -= sum[r];
      } else {
        y[g] = sum[r];
      }
    }
  }
}

void sell_neg_slices(const SellView& s, const double* x, double* out,
                     index_t slice_begin, index_t slice_end) {
  constexpr auto kC = static_cast<index_t>(kSellSlice);
  for (index_t sl = slice_begin; sl < slice_end; ++sl) {
    double sum[kSellSlice];
    slice_sums(s, sl, x, sum);
    for (index_t r = 0; r < kC; ++r) {
      const index_t g = s.perm[sl * kC + r];
      if (g < 0) continue;
      out[g] = -sum[r];
    }
  }
}

}  // namespace mstep::la::simd::avx2

#endif  // MSTEP_HAS_AVX2
