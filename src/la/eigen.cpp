#include "la/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace mstep::la {

std::vector<double> tridiagonal_eigenvalues(const std::vector<double>& a,
                                            const std::vector<double>& b) {
  const int n = static_cast<int>(a.size());
  if (n == 0) return {};
  if (static_cast<int>(b.size()) != n - 1 && n > 1) {
    throw std::invalid_argument("tridiagonal_eigenvalues: bad off-diagonal");
  }
  // Gershgorin bracket.
  double lo = a[0], hi = a[0];
  for (int i = 0; i < n; ++i) {
    double r = 0.0;
    if (i > 0) r += std::abs(b[i - 1]);
    if (i < n - 1) r += std::abs(b[i]);
    lo = std::min(lo, a[i] - r);
    hi = std::max(hi, a[i] + r);
  }

  // Sturm count: the number of negative pivots of the LDL^T factorization
  // of (T - xI) equals the number of eigenvalues < x (Sylvester).  A zero
  // pivot (x hits an eigenvalue of a leading minor) is replaced by a tiny
  // NEGATIVE value before the sign test — the standard Demmel treatment;
  // the subsequent division then overflows harmlessly to +inf.
  constexpr double kTiny = 1e-300;
  auto count_below = [&](double x) {
    int count = 0;
    double q = a[0] - x;
    if (q == 0.0) q = -kTiny;
    if (q < 0) ++count;
    for (int i = 1; i < n; ++i) {
      q = a[i] - x - b[i - 1] * b[i - 1] / q;
      if (q == 0.0) q = -kTiny;
      if (q < 0) ++count;
    }
    return count;
  };

  std::vector<double> ev(n);
  for (int k = 0; k < n; ++k) {
    double l = lo, u = hi;
    for (int it = 0; it < 200; ++it) {
      const double mid = 0.5 * (l + u);
      if (count_below(mid) <= k) {
        l = mid;
      } else {
        u = mid;
      }
      if (u - l < 1e-14 * std::max(1.0, std::abs(u))) break;
    }
    ev[k] = 0.5 * (l + u);
  }
  return ev;
}

PowerResult power_method(const LinOp& op, index_t n, int max_iter, double tol,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  Vec x = rng.uniform_vector(n);
  Vec y(n);
  double lambda = 0.0;
  PowerResult res;
  for (int it = 0; it < max_iter; ++it) {
    op(x, y);
    const double norm = nrm2(y);
    if (norm == 0.0) break;
    for (index_t i = 0; i < n; ++i) x[i] = y[i] / norm;
    op(x, y);
    const double next = dot(x, y);
    res.iterations = it + 1;
    if (std::abs(next - lambda) <= tol * std::max(1.0, std::abs(next))) {
      res.eigenvalue = next;
      res.converged = true;
      return res;
    }
    lambda = next;
  }
  res.eigenvalue = lambda;
  return res;
}

SpectrumEstimate lanczos_extreme(const LinOp& op, index_t n, int steps,
                                 std::uint64_t seed) {
  steps = std::min<int>(steps, n);
  util::Rng rng(seed);
  Vec v = rng.uniform_vector(n);
  scale(1.0 / nrm2(v), v);
  Vec v_prev(n, 0.0);
  Vec w(n);
  std::vector<double> alpha;
  std::vector<double> beta;
  double beta_prev = 0.0;

  for (int j = 0; j < steps; ++j) {
    op(v, w);
    const double a = dot(v, w);
    alpha.push_back(a);
    // w <- w - a v - beta_prev v_prev, with full reorthogonalization against
    // the two previous vectors only (sufficient for extreme-eigenvalue
    // estimates at the step counts we use).
    for (index_t i = 0; i < n; ++i) w[i] -= a * v[i] + beta_prev * v_prev[i];
    const double b = nrm2(w);
    if (b < 1e-12) break;
    beta.push_back(b);
    v_prev = v;
    for (index_t i = 0; i < n; ++i) v[i] = w[i] / b;
    beta_prev = b;
  }
  if (!alpha.empty() && beta.size() >= alpha.size()) beta.resize(alpha.size() - 1);

  const auto ev = tridiagonal_eigenvalues(
      alpha, std::vector<double>(beta.begin(),
                                 beta.begin() + std::max<std::size_t>(
                                                    alpha.size(), 1) - 1));
  SpectrumEstimate est;
  est.lanczos_steps = static_cast<int>(alpha.size());
  if (!ev.empty()) {
    est.lambda_min = ev.front();
    est.lambda_max = ev.back();
  }
  return est;
}

SpectrumEstimate lanczos_extreme_preconditioned(const LinOp& a_op,
                                                const LinOp& minv, index_t n,
                                                int steps,
                                                std::uint64_t seed) {
  // Lanczos for M^{-1}A in the M inner product.  Maintain r (residual-like,
  // "M v" space) and z = M^{-1} r.  <x, y>_M inner products reduce to
  // (z_x, r_y) pairs, so M itself is never applied.
  steps = std::min<int>(steps, n);
  util::Rng rng(seed);
  Vec r = rng.uniform_vector(n);
  Vec z(n);
  minv(r, z);
  double nrm = std::sqrt(std::max(0.0, dot(z, r)));
  if (nrm == 0.0) return {};
  scale(1.0 / nrm, r);
  scale(1.0 / nrm, z);

  Vec r_prev(n, 0.0);
  Vec z_prev(n, 0.0);
  Vec w(n);
  std::vector<double> alpha;
  std::vector<double> beta;
  double beta_prev = 0.0;

  for (int j = 0; j < steps; ++j) {
    // w = A z  (this is M * (M^{-1}A) v in the transformed space)
    a_op(z, w);
    const double a = dot(z, w);
    alpha.push_back(a);
    for (index_t i = 0; i < n; ++i) {
      w[i] -= a * r[i] + beta_prev * r_prev[i];
    }
    Vec zw(n);
    minv(w, zw);
    const double b2 = dot(zw, w);
    if (b2 <= 1e-24) break;
    const double b = std::sqrt(b2);
    beta.push_back(b);
    r_prev = r;
    z_prev = z;
    for (index_t i = 0; i < n; ++i) {
      r[i] = w[i] / b;
      z[i] = zw[i] / b;
    }
    beta_prev = b;
  }
  (void)z_prev;
  if (!alpha.empty() && beta.size() >= alpha.size()) beta.resize(alpha.size() - 1);

  const auto ev = tridiagonal_eigenvalues(
      alpha, std::vector<double>(beta.begin(),
                                 beta.begin() + std::max<std::size_t>(
                                                    alpha.size(), 1) - 1));
  SpectrumEstimate est;
  est.lanczos_steps = static_cast<int>(alpha.size());
  if (!ev.empty()) {
    est.lambda_min = ev.front();
    est.lambda_max = ev.back();
  }
  return est;
}

std::pair<double, double> gershgorin_interval(const CsrMatrix& a) {
  double lo = 0.0, hi = 0.0;
  bool first = true;
  const auto& rp = a.row_ptr();
  const auto& col = a.col_idx();
  const auto& val = a.values();
  for (index_t i = 0; i < a.rows(); ++i) {
    double d = 0.0, r = 0.0;
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) {
      if (col[k] == i) {
        d = val[k];
      } else {
        r += std::abs(val[k]);
      }
    }
    if (first) {
      lo = d - r;
      hi = d + r;
      first = false;
    } else {
      lo = std::min(lo, d - r);
      hi = std::max(hi, d + r);
    }
  }
  return {lo, hi};
}

}  // namespace mstep::la
