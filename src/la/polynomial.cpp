#include "la/polynomial.hpp"

#include <cmath>
#include <stdexcept>

namespace mstep::la {

Polynomial::Polynomial(std::vector<double> coeffs) : c_(std::move(coeffs)) {
  if (c_.empty()) c_ = {0.0};
}

double Polynomial::operator()(double x) const {
  double r = 0.0;
  for (std::size_t k = c_.size(); k-- > 0;) r = r * x + c_[k];
  return r;
}

Polynomial Polynomial::operator+(const Polynomial& o) const {
  std::vector<double> r(std::max(c_.size(), o.c_.size()), 0.0);
  for (std::size_t k = 0; k < c_.size(); ++k) r[k] += c_[k];
  for (std::size_t k = 0; k < o.c_.size(); ++k) r[k] += o.c_[k];
  return Polynomial(std::move(r));
}

Polynomial Polynomial::operator-(const Polynomial& o) const {
  std::vector<double> r(std::max(c_.size(), o.c_.size()), 0.0);
  for (std::size_t k = 0; k < c_.size(); ++k) r[k] += c_[k];
  for (std::size_t k = 0; k < o.c_.size(); ++k) r[k] -= o.c_[k];
  return Polynomial(std::move(r));
}

Polynomial Polynomial::operator*(const Polynomial& o) const {
  std::vector<double> r(c_.size() + o.c_.size() - 1, 0.0);
  for (std::size_t i = 0; i < c_.size(); ++i) {
    if (c_[i] == 0.0) continue;
    for (std::size_t j = 0; j < o.c_.size(); ++j) {
      r[i + j] += c_[i] * o.c_[j];
    }
  }
  return Polynomial(std::move(r));
}

Polynomial Polynomial::operator*(double s) const {
  std::vector<double> r = c_;
  for (auto& v : r) v *= s;
  return Polynomial(std::move(r));
}

Polynomial Polynomial::compose_linear(double a, double b) const {
  // p(a + b x) via Horner on the linear factor.
  Polynomial result({c_.back()});
  const Polynomial lin({a, b});
  for (std::size_t k = c_.size() - 1; k-- > 0;) {
    result = result * lin + Polynomial({c_[k]});
  }
  return result;
}

Polynomial Polynomial::derivative() const {
  if (c_.size() <= 1) return Polynomial({0.0});
  std::vector<double> r(c_.size() - 1);
  for (std::size_t k = 1; k < c_.size(); ++k) {
    r[k - 1] = c_[k] * static_cast<double>(k);
  }
  return Polynomial(std::move(r));
}

Polynomial Polynomial::divide_by_x(double tol) const {
  if (std::abs(c_[0]) > tol) {
    throw std::invalid_argument("divide_by_x: p(0) != 0");
  }
  if (c_.size() == 1) return Polynomial({0.0});
  return Polynomial(std::vector<double>(c_.begin() + 1, c_.end()));
}

void Polynomial::trim(double tol) {
  while (c_.size() > 1 && std::abs(c_.back()) <= tol) c_.pop_back();
}

Polynomial Polynomial::monomial(int k, double coeff) {
  std::vector<double> c(static_cast<std::size_t>(k) + 1, 0.0);
  c.back() = coeff;
  return Polynomial(std::move(c));
}

Polynomial chebyshev_t(int n) {
  if (n == 0) return Polynomial({1.0});
  if (n == 1) return Polynomial({0.0, 1.0});
  Polynomial tkm1({1.0});
  Polynomial tk({0.0, 1.0});
  const Polynomial two_x({0.0, 2.0});
  for (int k = 2; k <= n; ++k) {
    Polynomial next = two_x * tk - tkm1;
    tkm1 = std::move(tk);
    tk = std::move(next);
  }
  return tk;
}

double chebyshev_t_value(int n, double x) {
  if (std::abs(x) <= 1.0) return std::cos(n * std::acos(x));
  const double s = x < 0 && (n % 2 == 1) ? -1.0 : 1.0;
  return s * std::cosh(n * std::acosh(std::abs(x)));
}

std::vector<double> to_one_minus_x_basis(const Polynomial& p) {
  // p(x) = q(1 - x) where q(g) = p(1 - g): compose with x -> 1 - x.
  const Polynomial q = p.compose_linear(1.0, -1.0);
  return q.coeffs();
}

Polynomial from_one_minus_x_basis(const std::vector<double>& a) {
  return Polynomial(a).compose_linear(1.0, -1.0);
}

}  // namespace mstep::la
