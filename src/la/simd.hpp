// The one SIMD kernel layer behind every hot loop in the library.
//
// Every kernel here has two implementations — a portable scalar twin and an
// explicit AVX2 path (src/la/simd_avx2.cpp, compiled with -mavx2 and
// runtime-dispatched) — that execute the SAME sequence of IEEE-754
// operations, so the results are BITWISE identical whichever path runs.
// That is what lets the dispatch decision (CPU support, the MSTEP_SIMD env
// var, the test force API) be taken anywhere without touching the
// determinism contract: serial == threaded == SIMD-on == SIMD-off.
//
// The trick is a FIXED-LANE summation schedule.  A reduction over n terms
// is split into L interleaved lane sums (term i goes to lane i mod L, each
// lane accumulated left-to-right) combined in fixed order l0 + l1 + ... —
// the natural shape of a vector accumulator register, and one a scalar
// loop reproduces exactly with L independent accumulators:
//
//   * dot blocks use L = 8 (two 4-wide AVX2 accumulators; breaks the FP
//     add dependency chain 8x, which is the entire scalar bottleneck);
//   * sparse row sums (CSR SpMV, the multicolor sweep's lower/upper sums,
//     SELL-C-sigma lanes) also use L = 8 (two accumulators + x gathers —
//     one accumulator would serialize the row on the FP add latency).
//
// la::kReductionBlock (1024) is a multiple of both, so the threaded
// fixed-block reduction keeps lane phase across block boundaries.
// Elementwise kernels (axpy, DIA triads, ...) need no schedule: each
// element's mul+add order is the serial one.  No kernel may use FMA — the
// portable twin compiles to separate mul and add on every target (the
// build forces -ffp-contract=off), so the AVX2 path uses _mm256_mul_pd +
// _mm256_add_pd, never _mm256_fmadd_pd.
#pragma once

#include <cstddef>

#include "la/vector.hpp"

namespace mstep::la::simd {

/// Lane counts of the fixed summation schedules (see file comment).
inline constexpr std::size_t kDotLanes = 8;
inline constexpr std::size_t kRowLanes = 8;
/// Rows per SELL-C-sigma slice — one AVX2 double register.  Distinct from
/// kRowLanes: the slice height is the number of rows processed together,
/// the lane count is the summation schedule WITHIN each row.
inline constexpr std::size_t kSellSlice = 4;

/// Dispatch control.  kAuto follows the MSTEP_SIMD environment variable
/// ("off"/"0"/"scalar" forces the portable twin, "on"/"1"/"avx2" and unset
/// use the vector path when the CPU has it); the force modes override the
/// environment from code (tests, the bench harness).
enum class SimdMode { kAuto, kForceScalar, kForceVector };

void set_simd_mode(SimdMode mode);
[[nodiscard]] SimdMode simd_mode();
/// True when the AVX2 path was compiled in (x86-64 and the compiler took
/// -mavx2).
[[nodiscard]] bool simd_compiled();
/// True when the AVX2 path is compiled in AND this CPU executes it.
[[nodiscard]] bool simd_available();
/// The resolved decision for the next kernel call.
[[nodiscard]] bool simd_active();
/// "avx2" when simd_active(), else "scalar" — for reports and bench rows.
[[nodiscard]] const char* simd_isa();

/// RAII force-scalar/force-vector scope for tests and benches.
class SimdModeGuard {
 public:
  explicit SimdModeGuard(SimdMode mode) : saved_(simd_mode()) {
    set_simd_mode(mode);
  }
  ~SimdModeGuard() { set_simd_mode(saved_); }
  SimdModeGuard(const SimdModeGuard&) = delete;
  SimdModeGuard& operator=(const SimdModeGuard&) = delete;

 private:
  SimdMode saved_;
};

// ---- reductions (fixed-lane schedule) ---------------------------------------

/// 8-lane dot product over [0, n) — the per-block kernel of the
/// deterministic blocked reduction (la::dot / par::Execution::dot).
[[nodiscard]] double dot_block(const double* x, const double* y,
                               std::size_t n);

/// 8-lane sparse row sum: sum_k val[k] * x[col[k]] over k in [begin, end).
/// Shared by CSR SpMV and the multicolor sweeps; SELL lanes reproduce the
/// same per-row schedule, which is what makes the formats bitwise-equal.
[[nodiscard]] double row_dot(const double* val, const index_t* col,
                             const double* x, index_t begin, index_t end);

/// Fused CG update u[i] += a * p[i] over [0, n), returning max |a * p[i]|.
/// The max reduction is order-insensitive over non-negative values, so no
/// schedule is needed.
[[nodiscard]] double step_update_max(double a, const double* p, double* u,
                                     std::size_t n);

// ---- elementwise BLAS-1 (serial accumulation order per element) -------------

void axpy(double a, const double* x, double* y, std::size_t n);
void xpay(const double* x, double b, double* y, std::size_t n);
void waxpby(double a, const double* x, double b, const double* y, double* w,
            std::size_t n);
/// y[i] = a * x[i]; x == y aliasing allowed (in-place scale).
void scale_copy(double a, const double* x, double* y, std::size_t n);
void hadamard(const double* x, const double* y, double* w, std::size_t n);
void vsub(const double* x, const double* y, double* w, std::size_t n);
void vadd(const double* x, const double* y, double* w, std::size_t n);

// ---- sparse kernels ---------------------------------------------------------

/// CSR rows [row_begin, row_end): y[i] = (or -=) the 8-lane row sum.
void csr_spmv_rows(const index_t* rp, const index_t* col, const double* val,
                   const double* x, double* y, index_t row_begin,
                   index_t row_end, bool subtract);

/// One DIA triad over [lo, hi): y[i] += (or -=) v[i] * x[i + off].
void dia_triad(const double* v, const double* x, double* y, index_t lo,
               index_t hi, index_t off, bool subtract);

/// Non-owning view of SELL-C-sigma storage (see la/sell_matrix.hpp).
/// C = kSellSlice rows per slice; values/columns slice-column-major:
/// entry j of the row in slot (slice s, lane r) is val[slice_ptr[s] + j*C
/// + r].  len[s*C + r] is that row's entry count, perm[s*C + r] its global
/// row index (-1 marks a slot with no row: past the last row, or a padding
/// slot of a segment view).
struct SellView {
  const double* val = nullptr;
  const index_t* col = nullptr;
  const index_t* len = nullptr;
  const index_t* perm = nullptr;
  const std::size_t* slice_ptr = nullptr;
  index_t num_slices = 0;
};

/// SELL slices [slice_begin, slice_end): for each real slot, y[perm[slot]]
/// = (or -=) the slot row's 8-lane sum.  Lane l of row r accumulates its
/// entries j with j mod 8 == l in increasing j — the exact schedule of
/// row_dot — so SELL SpMV is bitwise CSR SpMV.
void sell_spmv_slices(const SellView& s, const double* x, double* y,
                      index_t slice_begin, index_t slice_end, bool subtract);

/// Negated-sum form for the multicolor sweeps: out[perm[slot]] = -(the slot
/// row's 8-lane sum) — bitwise `-row_dot(...)` over the stored segment,
/// since negating the finished sum commutes with round-to-nearest.  The
/// sweeps store each colour class's strictly-lower / strictly-upper row
/// segments as SELL slices (la::SellSegments) and scatter the sums through
/// this kernel, vectorizing ACROSS the rows of a class — legal exactly
/// because the multicolor ordering makes those rows independent.
void sell_neg_slices(const SellView& s, const double* x, double* out,
                     index_t slice_begin, index_t slice_end);

}  // namespace mstep::la::simd
