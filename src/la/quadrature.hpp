// Gauss–Legendre quadrature.
//
// The least-squares parameter fit (Section 2.2 of the paper) needs Gram
// integrals of low-degree polynomials over the spectrum interval
// [lambda_1, lambda_n]; an n-point Gauss rule integrates degree 2n-1
// exactly, so the fits are exact up to rounding.
#pragma once

#include <functional>
#include <vector>

namespace mstep::la {

struct QuadratureRule {
  std::vector<double> nodes;    // on [-1, 1]
  std::vector<double> weights;  // summing to 2
};

/// n-point Gauss–Legendre rule on [-1, 1].  Nodes are roots of the Legendre
/// polynomial P_n found by Newton iteration from Chebyshev initial guesses.
[[nodiscard]] QuadratureRule gauss_legendre(int n);

/// Integrate f over [a, b] with an n-point Gauss rule.
[[nodiscard]] double integrate(const std::function<double(double)>& f,
                               double a, double b, int n = 32);

}  // namespace mstep::la
