// Internal declarations of the AVX2 kernel variants (src/la/simd_avx2.cpp,
// compiled with -mavx2).  Only src/la/simd.cpp — the dispatcher — may call
// these, and only after checking simd_active(); the public surface is
// la/simd.hpp.  Every function here is the bitwise twin of the portable
// kernel of the same name.
#pragma once

#include <cstddef>

#include "la/simd.hpp"

#if defined(MSTEP_HAS_AVX2)

namespace mstep::la::simd::avx2 {

[[nodiscard]] double dot_block(const double* x, const double* y,
                               std::size_t n);
[[nodiscard]] double row_dot(const double* val, const index_t* col,
                             const double* x, index_t begin, index_t end);
[[nodiscard]] double step_update_max(double a, const double* p, double* u,
                                     std::size_t n);

void axpy(double a, const double* x, double* y, std::size_t n);
void xpay(const double* x, double b, double* y, std::size_t n);
void waxpby(double a, const double* x, double b, const double* y, double* w,
            std::size_t n);
void scale_copy(double a, const double* x, double* y, std::size_t n);
void hadamard(const double* x, const double* y, double* w, std::size_t n);
void vsub(const double* x, const double* y, double* w, std::size_t n);
void vadd(const double* x, const double* y, double* w, std::size_t n);

void csr_spmv_rows(const index_t* rp, const index_t* col, const double* val,
                   const double* x, double* y, index_t row_begin,
                   index_t row_end, bool subtract);
void dia_triad(const double* v, const double* x, double* y, index_t lo,
               index_t hi, index_t off, bool subtract);
void sell_spmv_slices(const SellView& s, const double* x, double* y,
                      index_t slice_begin, index_t slice_end, bool subtract);
void sell_neg_slices(const SellView& s, const double* x, double* out,
                     index_t slice_begin, index_t slice_end);

}  // namespace mstep::la::simd::avx2

#endif  // MSTEP_HAS_AVX2
