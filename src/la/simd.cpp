// Portable twins + runtime dispatch for the SIMD kernel layer.
//
// The scalar implementations here are NOT naive loops: reductions follow
// the same fixed-lane schedule as the AVX2 path (see la/simd.hpp), so both
// paths perform the identical sequence of IEEE-754 mul/add operations and
// produce bitwise-identical results.  Dispatch is a relaxed atomic load
// plus a branch per kernel call; the decision may therefore change at any
// time (tests flip it per-case) without affecting any result.
#include "la/simd.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "la/simd_internal.hpp"

namespace mstep::la::simd {

namespace {

SimdMode mode_from_env() {
  const char* e = std::getenv("MSTEP_SIMD");
  if (e == nullptr) return SimdMode::kAuto;
  if (std::strcmp(e, "off") == 0 || std::strcmp(e, "0") == 0 ||
      std::strcmp(e, "scalar") == 0) {
    return SimdMode::kForceScalar;
  }
  if (std::strcmp(e, "on") == 0 || std::strcmp(e, "1") == 0 ||
      std::strcmp(e, "avx2") == 0) {
    return SimdMode::kForceVector;
  }
  return SimdMode::kAuto;
}

std::atomic<SimdMode>& mode_cell() {
  static std::atomic<SimdMode> cell{mode_from_env()};
  return cell;
}

}  // namespace

void set_simd_mode(SimdMode mode) {
  mode_cell().store(mode, std::memory_order_relaxed);
}

SimdMode simd_mode() { return mode_cell().load(std::memory_order_relaxed); }

bool simd_compiled() {
#if defined(MSTEP_HAS_AVX2)
  return true;
#else
  return false;
#endif
}

bool simd_available() {
#if defined(MSTEP_HAS_AVX2)
  static const bool cpu_ok = __builtin_cpu_supports("avx2") != 0;
  return cpu_ok;
#else
  return false;
#endif
}

bool simd_active() {
  const SimdMode m = simd_mode();
  if (m == SimdMode::kForceScalar) return false;
  // kForceVector still requires the path to exist: with no AVX2 the
  // portable twin runs — same bits, so forcing is safe everywhere.
  return simd_available();
}

const char* simd_isa() { return simd_active() ? "avx2" : "scalar"; }

// ---- portable twins ---------------------------------------------------------

namespace portable {

double dot_block(const double* x, const double* y, std::size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  double l4 = 0.0, l5 = 0.0, l6 = 0.0, l7 = 0.0;
  std::size_t i = 0;
  for (; i + kDotLanes <= n; i += kDotLanes) {
    l0 += x[i] * y[i];
    l1 += x[i + 1] * y[i + 1];
    l2 += x[i + 2] * y[i + 2];
    l3 += x[i + 3] * y[i + 3];
    l4 += x[i + 4] * y[i + 4];
    l5 += x[i + 5] * y[i + 5];
    l6 += x[i + 6] * y[i + 6];
    l7 += x[i + 7] * y[i + 7];
  }
  double lane[kDotLanes] = {l0, l1, l2, l3, l4, l5, l6, l7};
  for (; i < n; ++i) lane[i % kDotLanes] += x[i] * y[i];
  double s = lane[0];
  for (std::size_t l = 1; l < kDotLanes; ++l) s += lane[l];
  return s;
}

double row_dot(const double* val, const index_t* col, const double* x,
               index_t begin, index_t end) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  double l4 = 0.0, l5 = 0.0, l6 = 0.0, l7 = 0.0;
  index_t t = begin;
  for (; t + static_cast<index_t>(kRowLanes) <= end;
       t += static_cast<index_t>(kRowLanes)) {
    l0 += val[t] * x[col[t]];
    l1 += val[t + 1] * x[col[t + 1]];
    l2 += val[t + 2] * x[col[t + 2]];
    l3 += val[t + 3] * x[col[t + 3]];
    l4 += val[t + 4] * x[col[t + 4]];
    l5 += val[t + 5] * x[col[t + 5]];
    l6 += val[t + 6] * x[col[t + 6]];
    l7 += val[t + 7] * x[col[t + 7]];
  }
  double lane[kRowLanes] = {l0, l1, l2, l3, l4, l5, l6, l7};
  for (; t < end; ++t) {
    lane[static_cast<std::size_t>(t - begin) % kRowLanes] +=
        val[t] * x[col[t]];
  }
  double s = lane[0];
  for (std::size_t l = 1; l < kRowLanes; ++l) s += lane[l];
  return s;
}

double step_update_max(double a, const double* p, double* u, std::size_t n) {
  double mx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double step = a * p[i];
    u[i] += step;
    mx = std::max(mx, std::abs(step));
  }
  return mx;
}

void axpy(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void xpay(const double* x, double b, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i] + b * y[i];
}

void waxpby(double a, const double* x, double b, const double* y, double* w,
            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) w[i] = a * x[i] + b * y[i];
}

void scale_copy(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = a * x[i];
}

void hadamard(const double* x, const double* y, double* w, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) w[i] = x[i] * y[i];
}

void vsub(const double* x, const double* y, double* w, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) w[i] = x[i] - y[i];
}

void vadd(const double* x, const double* y, double* w, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) w[i] = x[i] + y[i];
}

void csr_spmv_rows(const index_t* rp, const index_t* col, const double* val,
                   const double* x, double* y, index_t row_begin,
                   index_t row_end, bool subtract) {
  if (subtract) {
    for (index_t i = row_begin; i < row_end; ++i) {
      y[i] -= row_dot(val, col, x, rp[i], rp[i + 1]);
    }
  } else {
    for (index_t i = row_begin; i < row_end; ++i) {
      y[i] = row_dot(val, col, x, rp[i], rp[i + 1]);
    }
  }
}

void dia_triad(const double* v, const double* x, double* y, index_t lo,
               index_t hi, index_t off, bool subtract) {
  if (subtract) {
    for (index_t i = lo; i < hi; ++i) y[i] -= v[i] * x[i + off];
  } else {
    for (index_t i = lo; i < hi; ++i) y[i] += v[i] * x[i + off];
  }
}

void sell_spmv_slices(const SellView& s, const double* x, double* y,
                      index_t slice_begin, index_t slice_end, bool subtract) {
  constexpr auto kC = static_cast<index_t>(kSellSlice);
  for (index_t sl = slice_begin; sl < slice_end; ++sl) {
    const std::size_t base = s.slice_ptr[sl];
    for (index_t r = 0; r < kC; ++r) {
      const index_t slot = sl * kC + r;
      const index_t g = s.perm[slot];
      if (g < 0) continue;  // slot holds no row
      const index_t length = s.len[slot];
      double lane[kRowLanes] = {};
      for (index_t j = 0; j < length; ++j) {
        const std::size_t at = base + static_cast<std::size_t>(j) * kC + r;
        lane[static_cast<std::size_t>(j) % kRowLanes] +=
            s.val[at] * x[s.col[at]];
      }
      double sum = lane[0];
      for (std::size_t l = 1; l < kRowLanes; ++l) sum += lane[l];
      if (subtract) {
        y[g] -= sum;
      } else {
        y[g] = sum;
      }
    }
  }
}

void sell_neg_slices(const SellView& s, const double* x, double* out,
                     index_t slice_begin, index_t slice_end) {
  constexpr auto kC = static_cast<index_t>(kSellSlice);
  for (index_t sl = slice_begin; sl < slice_end; ++sl) {
    const std::size_t base = s.slice_ptr[sl];
    for (index_t r = 0; r < kC; ++r) {
      const index_t slot = sl * kC + r;
      const index_t g = s.perm[slot];
      if (g < 0) continue;
      const index_t length = s.len[slot];
      double lane[kRowLanes] = {};
      for (index_t j = 0; j < length; ++j) {
        const std::size_t at = base + static_cast<std::size_t>(j) * kC + r;
        lane[static_cast<std::size_t>(j) % kRowLanes] +=
            s.val[at] * x[s.col[at]];
      }
      double sum = lane[0];
      for (std::size_t l = 1; l < kRowLanes; ++l) sum += lane[l];
      out[g] = -sum;
    }
  }
}

}  // namespace portable

// ---- dispatch ---------------------------------------------------------------

#if defined(MSTEP_HAS_AVX2)
#define MSTEP_SIMD_DISPATCH(call) \
  if (simd_active()) return avx2::call; \
  return portable::call
#else
#define MSTEP_SIMD_DISPATCH(call) return portable::call
#endif

double dot_block(const double* x, const double* y, std::size_t n) {
  MSTEP_SIMD_DISPATCH(dot_block(x, y, n));
}

double row_dot(const double* val, const index_t* col, const double* x,
               index_t begin, index_t end) {
  MSTEP_SIMD_DISPATCH(row_dot(val, col, x, begin, end));
}

double step_update_max(double a, const double* p, double* u, std::size_t n) {
  MSTEP_SIMD_DISPATCH(step_update_max(a, p, u, n));
}

void axpy(double a, const double* x, double* y, std::size_t n) {
  MSTEP_SIMD_DISPATCH(axpy(a, x, y, n));
}

void xpay(const double* x, double b, double* y, std::size_t n) {
  MSTEP_SIMD_DISPATCH(xpay(x, b, y, n));
}

void waxpby(double a, const double* x, double b, const double* y, double* w,
            std::size_t n) {
  MSTEP_SIMD_DISPATCH(waxpby(a, x, b, y, w, n));
}

void scale_copy(double a, const double* x, double* y, std::size_t n) {
  MSTEP_SIMD_DISPATCH(scale_copy(a, x, y, n));
}

void hadamard(const double* x, const double* y, double* w, std::size_t n) {
  MSTEP_SIMD_DISPATCH(hadamard(x, y, w, n));
}

void vsub(const double* x, const double* y, double* w, std::size_t n) {
  MSTEP_SIMD_DISPATCH(vsub(x, y, w, n));
}

void vadd(const double* x, const double* y, double* w, std::size_t n) {
  MSTEP_SIMD_DISPATCH(vadd(x, y, w, n));
}

void csr_spmv_rows(const index_t* rp, const index_t* col, const double* val,
                   const double* x, double* y, index_t row_begin,
                   index_t row_end, bool subtract) {
  MSTEP_SIMD_DISPATCH(
      csr_spmv_rows(rp, col, val, x, y, row_begin, row_end, subtract));
}

void dia_triad(const double* v, const double* x, double* y, index_t lo,
               index_t hi, index_t off, bool subtract) {
  MSTEP_SIMD_DISPATCH(dia_triad(v, x, y, lo, hi, off, subtract));
}

void sell_spmv_slices(const SellView& s, const double* x, double* y,
                      index_t slice_begin, index_t slice_end, bool subtract) {
  MSTEP_SIMD_DISPATCH(
      sell_spmv_slices(s, x, y, slice_begin, slice_end, subtract));
}

void sell_neg_slices(const SellView& s, const double* x, double* out,
                     index_t slice_begin, index_t slice_end) {
  MSTEP_SIMD_DISPATCH(sell_neg_slices(s, x, out, slice_begin, slice_end));
}

#undef MSTEP_SIMD_DISPATCH

}  // namespace mstep::la::simd
