// Minimal square-operator view for the solve path.
//
// Algorithm 1 needs only y = A x (and the derived residual update) from
// the system matrix, so the PCG driver is written against this non-owning
// view rather than a concrete storage format.  CSR and the Madsen–
// Rodrigue–Karush diagonal storage both adapt to it, letting one solver
// serve both the general-sparsity path and the vector-machine layout the
// paper times in Section 3.1.
#pragma once

#include "la/csr_matrix.hpp"
#include "la/dia_matrix.hpp"
#include "la/sell_matrix.hpp"
#include "la/vector.hpp"

namespace mstep::par {
class Execution;  // par/execution.hpp — the threaded kernel policy
}

namespace mstep::la {

/// Non-owning view of a square linear operator.  The viewed matrix must
/// outlive the view.
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  [[nodiscard]] virtual index_t rows() const = 0;

  /// y = A x
  virtual void multiply(const Vec& x, Vec& y) const = 0;

  /// y = y - A x
  virtual void multiply_sub(const Vec& x, Vec& y) const = 0;

  /// Execution-policy forms: identical results (bitwise) to the serial
  /// forms, computed through `exec`'s threads when it is parallel.  The
  /// base implementations ignore `exec` and run serially, so custom
  /// operators stay correct without opting in.
  virtual void multiply(const Vec& x, Vec& y,
                        const par::Execution& exec) const;
  virtual void multiply_sub(const Vec& x, Vec& y,
                            const par::Execution& exec) const;

  /// Number of nonzero (generalized) diagonals — the instrumentation
  /// stream prices an SpMV as this many vector triads (Section 3.1).
  [[nodiscard]] virtual index_t num_nonzero_diagonals() const = 0;

  /// r = b - A x
  void residual(const Vec& b, const Vec& x, Vec& r) const {
    r = b;
    multiply_sub(x, r);
  }
  void residual(const Vec& b, const Vec& x, Vec& r,
                const par::Execution& exec) const {
    r = b;
    multiply_sub(x, r, exec);
  }
};

/// CSR-backed view.
class CsrOperator final : public LinearOperator {
 public:
  explicit CsrOperator(const CsrMatrix& a) : a_(&a) {}

  [[nodiscard]] index_t rows() const override { return a_->rows(); }
  void multiply(const Vec& x, Vec& y) const override { a_->multiply(x, y); }
  void multiply_sub(const Vec& x, Vec& y) const override {
    a_->multiply_sub(x, y);
  }
  void multiply(const Vec& x, Vec& y,
                const par::Execution& exec) const override;
  void multiply_sub(const Vec& x, Vec& y,
                    const par::Execution& exec) const override;
  [[nodiscard]] index_t num_nonzero_diagonals() const override {
    return a_->num_nonzero_diagonals();
  }

 private:
  const CsrMatrix* a_;
};

/// Diagonal-storage-backed view (the CYBER 203/205 kernel layout).
class DiaOperator final : public LinearOperator {
 public:
  explicit DiaOperator(const DiaMatrix& a) : a_(&a) {}

  [[nodiscard]] index_t rows() const override { return a_->rows(); }
  void multiply(const Vec& x, Vec& y) const override { a_->multiply(x, y); }
  void multiply_sub(const Vec& x, Vec& y) const override {
    a_->multiply_sub(x, y);
  }
  void multiply(const Vec& x, Vec& y,
                const par::Execution& exec) const override;
  void multiply_sub(const Vec& x, Vec& y,
                    const par::Execution& exec) const override;
  [[nodiscard]] index_t num_nonzero_diagonals() const override {
    return a_->num_diagonals();
  }

 private:
  const DiaMatrix* a_;
};

/// SELL-C-sigma-backed view (the SIMD-sliced layout).  Bitwise identical
/// to CsrOperator — the sliced kernel reproduces the CSR row-sum schedule.
class SellOperator final : public LinearOperator {
 public:
  explicit SellOperator(const SellMatrix& a) : a_(&a) {}

  [[nodiscard]] index_t rows() const override { return a_->rows(); }
  void multiply(const Vec& x, Vec& y) const override { a_->multiply(x, y); }
  void multiply_sub(const Vec& x, Vec& y) const override {
    a_->multiply_sub(x, y);
  }
  void multiply(const Vec& x, Vec& y,
                const par::Execution& exec) const override;
  void multiply_sub(const Vec& x, Vec& y,
                    const par::Execution& exec) const override;
  [[nodiscard]] index_t num_nonzero_diagonals() const override {
    return a_->num_nonzero_diagonals();
  }

 private:
  const SellMatrix* a_;
};

}  // namespace mstep::la
