#include "color/greedy.hpp"

#include <algorithm>
#include <stdexcept>

namespace mstep::color {

std::vector<int> greedy_vertex_coloring(
    const std::vector<std::vector<index_t>>& adjacency) {
  const std::size_t n = adjacency.size();
  std::vector<int> color(n, -1);
  std::vector<char> used;
  for (std::size_t v = 0; v < n; ++v) {
    used.assign(used.size(), 0);
    int max_needed = 0;
    for (index_t w : adjacency[v]) {
      if (color[w] >= 0) max_needed = std::max(max_needed, color[w] + 1);
    }
    used.assign(static_cast<std::size_t>(max_needed) + 1, 0);
    for (index_t w : adjacency[v]) {
      if (color[w] >= 0) used[color[w]] = 1;
    }
    int c = 0;
    while (c < static_cast<int>(used.size()) && used[c]) ++c;
    color[v] = c;
  }
  return color;
}

ColorClasses greedy_classes(const fem::TriMesh& mesh) {
  const std::vector<int> node_color =
      greedy_vertex_coloring(mesh.node_adjacency());
  int ncolors = 0;
  for (index_t node = 0; node < mesh.num_nodes(); ++node) {
    if (!mesh.is_constrained(node)) {
      ncolors = std::max(ncolors, node_color[node] + 1);
    }
  }
  ColorClasses cc;
  cc.classes.assign(static_cast<std::size_t>(2) * ncolors, {});
  for (int g = 0; g < ncolors; ++g) {
    for (int dof = 0; dof < 2; ++dof) {
      auto& cls = cc.classes[2 * g + dof];
      for (index_t node = 0; node < mesh.num_nodes(); ++node) {
        if (mesh.is_constrained(node) || node_color[node] != g) continue;
        cls.push_back(mesh.equation_id(node, dof));
      }
    }
  }
  // Drop empty classes (a colour may only appear on constrained nodes).
  cc.classes.erase(
      std::remove_if(cc.classes.begin(), cc.classes.end(),
                     [](const std::vector<index_t>& c) { return c.empty(); }),
      cc.classes.end());
  return cc;
}

ColorClasses greedy_classes_from_matrix(const la::CsrMatrix& k) {
  const index_t n = k.rows();
  std::vector<std::vector<index_t>> adjacency(n);
  const auto& rp = k.row_ptr();
  const auto& col = k.col_idx();
  for (index_t i = 0; i < n; ++i) {
    for (index_t t = rp[i]; t < rp[i + 1]; ++t) {
      if (col[t] != i) adjacency[i].push_back(col[t]);
    }
  }
  const std::vector<int> color = greedy_vertex_coloring(adjacency);
  int ncolors = 0;
  for (int c : color) ncolors = std::max(ncolors, c + 1);
  ColorClasses cc;
  cc.classes.assign(ncolors, {});
  for (index_t i = 0; i < n; ++i) cc.classes[color[i]].push_back(i);
  return cc;
}

int greedy_color_count(const fem::TriMesh& mesh) {
  const std::vector<int> node_color =
      greedy_vertex_coloring(mesh.node_adjacency());
  int ncolors = 0;
  for (int c : node_color) ncolors = std::max(ncolors, c + 1);
  return ncolors;
}

}  // namespace mstep::color
