#include "color/coloring.hpp"

#include <cassert>
#include <set>
#include <sstream>
#include <stdexcept>

namespace mstep::color {

index_t ColorClasses::total_equations() const {
  index_t n = 0;
  for (const auto& c : classes) n += static_cast<index_t>(c.size());
  return n;
}

ColorClasses six_color_classes(const fem::PlateMesh& mesh) {
  ColorClasses cc;
  cc.classes.assign(6, {});
  // Bottom-to-top (rows ascending), left-to-right within a row.
  for (int color = 0; color < 3; ++color) {
    for (int dof = 0; dof < 2; ++dof) {
      auto& cls = cc.classes[2 * color + dof];
      for (int r = 0; r < mesh.nrows(); ++r) {
        for (int c = 1; c < mesh.ncols(); ++c) {
          const index_t node = mesh.node_id(r, c);
          if (static_cast<int>(mesh.color(node)) != color) continue;
          cls.push_back(mesh.equation_id(node, dof));
        }
      }
    }
  }
  return cc;
}

ColorClasses two_color_classes(const fem::PoissonProblem& p) {
  ColorClasses cc;
  cc.classes.assign(2, {});
  for (int j = 0; j < p.ny(); ++j) {
    for (int i = 0; i < p.nx(); ++i) {
      cc.classes[p.color(i, j)].push_back(p.unknown_id(i, j));
    }
  }
  return cc;
}

std::vector<index_t> permutation_from_classes(const ColorClasses& classes) {
  std::vector<index_t> perm;
  perm.reserve(classes.total_equations());
  for (const auto& cls : classes.classes) {
    perm.insert(perm.end(), cls.begin(), cls.end());
  }
  return perm;
}

std::vector<index_t> inverse_permutation(const std::vector<index_t>& perm) {
  std::vector<index_t> inv(perm.size());
  for (index_t i = 0; i < static_cast<index_t>(perm.size()); ++i) {
    inv[perm[i]] = i;
  }
  return inv;
}

Vec ColoredSystem::permute(const Vec& x) const {
  assert(x.size() == perm.size());
  Vec y(x.size());
  for (std::size_t i = 0; i < perm.size(); ++i) y[i] = x[perm[i]];
  return y;
}

Vec ColoredSystem::unpermute(const Vec& x) const {
  assert(x.size() == perm.size());
  Vec y(x.size());
  for (std::size_t i = 0; i < perm.size(); ++i) y[perm[i]] = x[i];
  return y;
}

void ColoredSystem::permute_into(const Vec& x, Vec& out) const {
  assert(x.size() == perm.size());
  assert(&x != &out);
  out.resize(x.size());
  for (std::size_t i = 0; i < perm.size(); ++i) out[i] = x[perm[i]];
}

void ColoredSystem::unpermute_into(const Vec& x, Vec& out) const {
  assert(x.size() == perm.size());
  assert(&x != &out);
  out.resize(x.size());
  for (std::size_t i = 0; i < perm.size(); ++i) out[perm[i]] = x[i];
}

ColoredSystem make_colored_system(const la::CsrMatrix& k,
                                  const ColorClasses& classes) {
  if (classes.total_equations() != k.rows()) {
    throw std::invalid_argument(
        "make_colored_system: classes do not cover the matrix");
  }
  ColoredSystem cs;
  cs.perm = permutation_from_classes(classes);
  cs.inv_perm = inverse_permutation(cs.perm);
  cs.matrix = k.permuted_symmetric(cs.perm);
  cs.class_start.assign(1, 0);
  for (const auto& cls : classes.classes) {
    cs.class_start.push_back(cs.class_start.back() +
                             static_cast<index_t>(cls.size()));
  }
  return cs;
}

BlockStructureReport verify_block_structure(const ColoredSystem& cs) {
  BlockStructureReport rep;
  rep.diagonal_blocks_are_diagonal = true;
  rep.paired_dof_blocks_are_diagonal = true;
  rep.max_row_nnz = cs.matrix.max_row_nnz();
  rep.nnz = cs.matrix.nnz();

  const int nc = cs.num_classes();
  // nnz census per block.
  std::vector<std::vector<index_t>> block_nnz(nc,
                                              std::vector<index_t>(nc, 0));
  const auto& rp = cs.matrix.row_ptr();
  const auto& col = cs.matrix.col_idx();
  const auto& val = cs.matrix.values();

  // Class lookup table (O(1) per query).
  std::vector<int> cls_of(cs.size());
  for (int k = 0; k < nc; ++k) {
    for (index_t i = cs.class_start[k]; i < cs.class_start[k + 1]; ++i) {
      cls_of[i] = k;
    }
  }

  for (index_t i = 0; i < cs.size(); ++i) {
    const int ci = cls_of[i];
    for (index_t t = rp[i]; t < rp[i + 1]; ++t) {
      if (val[t] == 0.0) continue;
      const index_t j = col[t];
      const int cj = cls_of[j];
      block_nnz[ci][cj]++;
      const index_t bi = i - cs.class_start[ci];
      const index_t bj = j - cs.class_start[cj];
      if (ci == cj && bi != bj) rep.diagonal_blocks_are_diagonal = false;
      // Paired-dof blocks: classes (2c, 2c+1) — u and v of the same colour
      // couple only at the same node, i.e. at matching positions.
      if (ci / 2 == cj / 2 && ci != cj && bi != bj) {
        rep.paired_dof_blocks_are_diagonal = false;
      }
    }
  }

  std::ostringstream os;
  os << "block nnz census (" << nc << " classes):\n";
  for (int a = 0; a < nc; ++a) {
    for (int b = 0; b < nc; ++b) {
      os << block_nnz[a][b] << (b + 1 == nc ? '\n' : ' ');
    }
  }
  rep.detail = os.str();
  return rep;
}

bool coloring_is_valid(const la::CsrMatrix& k, const ColorClasses& classes) {
  std::vector<int> cls(k.rows(), -1);
  for (int c = 0; c < classes.num_classes(); ++c) {
    for (index_t eq : classes.classes[c]) {
      if (eq < 0 || eq >= k.rows() || cls[eq] != -1) return false;
      cls[eq] = c;
    }
  }
  const auto& rp = k.row_ptr();
  const auto& col = k.col_idx();
  const auto& val = k.values();
  for (index_t i = 0; i < k.rows(); ++i) {
    if (cls[i] < 0) return false;
    for (index_t t = rp[i]; t < rp[i + 1]; ++t) {
      if (val[t] == 0.0 || col[t] == i) continue;
      if (cls[col[t]] == cls[i]) return false;
    }
  }
  return true;
}

RowSplits compute_row_splits(const ColoredSystem& cs) {
  RowSplits rs;
  rs.diag = cs.matrix.diagonal();
  const index_t n = cs.size();
  rs.lo_end.resize(n);
  rs.up_begin.resize(n);
  const auto& rp = cs.matrix.row_ptr();
  const auto& col = cs.matrix.col_idx();
  const auto& val = cs.matrix.values();
  for (int c = 0; c < cs.num_classes(); ++c) {
    for (index_t i = cs.class_start[c]; i < cs.class_start[c + 1]; ++i) {
      index_t t = rp[i];
      while (t < rp[i + 1] && col[t] < cs.class_start[c]) ++t;
      rs.lo_end[i] = t;
      while (t < rp[i + 1] && col[t] < cs.class_start[c + 1]) {
        if (col[t] != i && val[t] != 0.0) {
          throw std::invalid_argument(
              "compute_row_splits: diagonal class block is not diagonal");
        }
        ++t;
      }
      rs.up_begin[i] = t;
    }
  }
  return rs;
}

ClassDiagonalCensus compute_class_diagonal_census(const ColoredSystem& cs,
                                                  const RowSplits& splits) {
  const int nc = cs.num_classes();
  ClassDiagonalCensus census;
  census.lower.assign(nc, 0);
  census.upper.assign(nc, 0);

  const auto& rp = cs.matrix.row_ptr();
  const auto& col = cs.matrix.col_idx();
  const auto& val = cs.matrix.values();

  for (int c = 0; c < nc; ++c) {
    std::set<index_t> lower_offsets;
    std::set<index_t> upper_offsets;
    for (index_t i = cs.class_start[c]; i < cs.class_start[c + 1]; ++i) {
      for (index_t u = rp[i]; u < splits.lo_end[i]; ++u) {
        if (val[u] != 0.0) lower_offsets.insert(col[u] - i);
      }
      for (index_t u = splits.up_begin[i]; u < rp[i + 1]; ++u) {
        if (val[u] != 0.0) upper_offsets.insert(col[u] - i);
      }
    }
    census.lower[c] = static_cast<int>(lower_offsets.size());
    census.upper[c] = static_cast<int>(upper_offsets.size());
  }
  return census;
}

}  // namespace mstep::color
