// Greedy multicolor ordering for irregular regions.
//
// The structured plate gets its three colours from the closed form
// (r + 2c) mod 3; an irregular triangulation needs a graph colouring.  The
// greedy first-fit colouring over the node adjacency graph uses few colours
// on mesh-like graphs (bounded degree), and each node colour expands to two
// equation classes (u, v) exactly as in the structured case, preserving
// the property that every class diagonal block — and every same-colour
// paired-dof block — is diagonal.
#pragma once

#include <vector>

#include "color/coloring.hpp"
#include "fem/tri_mesh.hpp"

namespace mstep::color {

/// First-fit greedy colouring of an adjacency structure.  Returns one
/// colour id per vertex; the number of colours is max+1 and is bounded by
/// the maximum degree + 1.
[[nodiscard]] std::vector<int> greedy_vertex_coloring(
    const std::vector<std::vector<index_t>>& adjacency);

/// Equation classes for an irregular mesh: class(node colour g, dof d) =
/// 2g + d, equations within a class ordered by node id.
[[nodiscard]] ColorClasses greedy_classes(const fem::TriMesh& mesh);

/// Number of node colours the greedy colouring used on this mesh.
[[nodiscard]] int greedy_color_count(const fem::TriMesh& mesh);

/// Equation classes for an arbitrary symmetric sparse matrix: greedy
/// first-fit colouring of the off-diagonal adjacency graph, one class per
/// colour, equations within a class ordered by row id.  No two coupled
/// equations share a class, so every diagonal class block is diagonal —
/// this is how the Solver facade multicolour-orders a system it only
/// knows as a matrix.
[[nodiscard]] ColorClasses greedy_classes_from_matrix(const la::CsrMatrix& k);

}  // namespace mstep::color
