// Multicolor equation orderings (Adams & Ortega 1982) — the machinery that
// turns the stiffness matrix into the 6x6 block form of equation (3.1).
//
// A colouring partitions the equations into classes such that the diagonal
// block coupling a class to itself is *diagonal*; a class can then be
// updated with one reciprocal-diagonal multiply — in parallel, with no
// intra-class dependencies.  The plate problem needs six classes
// (Red/Black/Green x u/v); the 5-point Poisson problem needs two.
#pragma once

#include <string>
#include <vector>

#include "fem/plate_mesh.hpp"
#include "fem/poisson.hpp"
#include "la/csr_matrix.hpp"

namespace mstep::color {

/// Equation classes: classes[k] lists the equation ids (original ordering)
/// in class k, in their within-class order.
struct ColorClasses {
  std::vector<std::vector<index_t>> classes;

  [[nodiscard]] int num_classes() const {
    return static_cast<int>(classes.size());
  }
  [[nodiscard]] index_t total_equations() const;
};

/// Six-colour classes for the plate: class index k = 2 * colour + dof with
/// colour in {R=0, B=1, G=2} and dof in {u=0, v=1}; within a class,
/// equations are ordered bottom-to-top, left-to-right (the paper's CYBER
/// numbering).
[[nodiscard]] ColorClasses six_color_classes(const fem::PlateMesh& mesh);

/// Two-colour (red/black) classes for the 5-point Poisson problem.
[[nodiscard]] ColorClasses two_color_classes(const fem::PoissonProblem& p);

/// perm[new_index] = old_index for the class-concatenated ordering.
[[nodiscard]] std::vector<index_t> permutation_from_classes(
    const ColorClasses& classes);

/// inv[old_index] = new_index.
[[nodiscard]] std::vector<index_t> inverse_permutation(
    const std::vector<index_t>& perm);

/// A matrix reordered by colour classes, with the class boundaries kept.
/// This is the object every multicolour sweep operates on.
struct ColoredSystem {
  la::CsrMatrix matrix;              // K permuted symmetrically
  std::vector<index_t> class_start;  // size num_classes + 1
  std::vector<index_t> perm;         // perm[new] = old
  std::vector<index_t> inv_perm;     // inv_perm[old] = new

  [[nodiscard]] int num_classes() const {
    return static_cast<int>(class_start.size()) - 1;
  }
  [[nodiscard]] index_t size() const { return matrix.rows(); }
  [[nodiscard]] index_t class_size(int k) const {
    return class_start[k + 1] - class_start[k];
  }

  /// Reorder a vector from the original ordering into colour order.
  [[nodiscard]] Vec permute(const Vec& x) const;
  /// Inverse reordering.
  [[nodiscard]] Vec unpermute(const Vec& x) const;
  /// Allocation-free forms writing into a caller-owned buffer (resized on
  /// demand, capacity kept) — the batch engine's per-lane reorder scratch.
  /// `out` must not alias `x`.
  void permute_into(const Vec& x, Vec& out) const;
  void unpermute_into(const Vec& x, Vec& out) const;
};

/// Build the coloured system from a matrix in the original ordering.
[[nodiscard]] ColoredSystem make_colored_system(const la::CsrMatrix& k,
                                                const ColorClasses& classes);

/// Structural verification of equation (3.1).
struct BlockStructureReport {
  bool diagonal_blocks_are_diagonal = false;  // D_kk diagonal for all k
  bool paired_dof_blocks_are_diagonal = false;  // B12, B34, B56 diagonal
  index_t max_row_nnz = 0;
  index_t nnz = 0;
  std::string detail;  // human-readable block census
};

[[nodiscard]] BlockStructureReport verify_block_structure(
    const ColoredSystem& cs);

/// True iff no two equations in the same class are coupled by a nonzero —
/// the decoupling property the colouring must deliver.
[[nodiscard]] bool coloring_is_valid(const la::CsrMatrix& k,
                                     const ColorClasses& classes);

/// Per-row split of a coloured matrix into strictly-lower-class entries,
/// the diagonal, and strictly-upper-class entries — the structural analysis
/// every multicolour sweep (sequential, parallel, distributed) runs on.
/// Throws std::invalid_argument if a diagonal class block is not diagonal.
struct RowSplits {
  Vec diag;                       // diagonal entries
  std::vector<index_t> lo_end;    // per row: end of lower-class entries
  std::vector<index_t> up_begin;  // per row: begin of upper-class entries
};

[[nodiscard]] RowSplits compute_row_splits(const ColoredSystem& cs);

/// Per-class count of distinct nonzero (generalized) diagonals in the
/// strictly-lower-class and strictly-upper-class blocks.  The kernel
/// instrumentation prices one class sweep as this many vector triads
/// (Section 3.1); both the serial and the threaded multicolor sweep report
/// through it.
struct ClassDiagonalCensus {
  std::vector<int> lower;  // per class
  std::vector<int> upper;
};

[[nodiscard]] ClassDiagonalCensus compute_class_diagonal_census(
    const ColoredSystem& cs, const RowSplits& splits);

}  // namespace mstep::color
