// The synthetic problem catalog: registry-driven SPD test systems.
//
// A problem is everything a solve needs — the SPD matrix, a right-hand
// side, the known discrete solution when the generator manufactured one,
// and optional closed-form colour classes — parsed from a spec string
// like "poisson3d:n=32" that round-trips exactly like a SolverConfig.
// The ProblemRegistry mirrors SplittingRegistry: a generator registered
// here is immediately reachable from the mstep_solve driver, the catalog
// bench, and the tests, with option-key and range validation at parse
// time.  Built-ins (see catalog.cpp): poisson2d, poisson3d, aniso2d,
// convdiff, randspd, stencil9, femplate, cyberplate.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "color/coloring.hpp"
#include "la/csr_matrix.hpp"
#include "la/vector.hpp"
#include "util/spec.hpp"

namespace mstep::problems {

/// Numeric options of a problem spec, e.g. {"n", 32}.
using ProblemOptions = util::SpecOptions;

/// Parsed "name:key=value:..." spec; to_string()/from_string round-trip
/// exactly (same grammar and shortest round-trip numbers as the
/// SolverConfig splitting field).
struct ProblemSpec {
  std::string name;
  ProblemOptions options;

  [[nodiscard]] std::string to_string() const {
    return util::spec_string(name, options);
  }
  static ProblemSpec from_string(const std::string& text);

  friend bool operator==(const ProblemSpec& a, const ProblemSpec& b) {
    return a.name == b.name && a.options == b.options;
  }
  friend bool operator!=(const ProblemSpec& a, const ProblemSpec& b) {
    return !(a == b);
  }
};

/// A generated linear system K u = b with its provenance.
struct Problem {
  /// The spec it was generated from, defaults filled in — printing it
  /// reproduces the problem exactly.
  ProblemSpec spec;
  std::string description;  // one human-readable line for reports
  la::CsrMatrix matrix;     // SPD
  Vec rhs;
  /// The known discrete solution (b = K u_exact by construction); empty
  /// when the generator has none (e.g. the physical FEM load).
  Vec exact_solution;
  /// Closed-form colour classes when the generator knows them (plate:
  /// six colours, 5-point grid: red/black); empty means the solver
  /// colours the matrix graph greedily.
  color::ColorClasses classes;
  /// Bandedness probe (la::DiaMatrix::profitable): the DIA operator
  /// layout pays off for this matrix.
  bool dia_friendly = false;

  [[nodiscard]] bool has_exact() const { return !exact_solution.empty(); }
  [[nodiscard]] bool has_classes() const {
    return !classes.classes.empty();
  }
};

/// String-keyed registry of problem generators, mirroring
/// SplittingRegistry: option keys are validated at spec-parse time, and
/// a generator is reachable from every driver the moment it is added.
class ProblemRegistry {
 public:
  struct Entry {
    /// Build the problem; throws std::invalid_argument on bad options
    /// (e.g. the convdiff SPD guard).
    std::function<Problem(const ProblemOptions&)> factory;
    /// Option keys the factory accepts; anything else is rejected early.
    std::vector<std::string> option_keys;
    /// One-line description for --list output and reports.
    std::string description;
    /// Optional option-range validation run from check_options, i.e.
    /// before any matrix is built.
    std::function<void(const ProblemOptions&)> validate_options;
  };

  /// The process-wide registry, pre-populated with the built-ins.
  static ProblemRegistry& instance();

  void add(const std::string& name, Entry entry);
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] const Entry& at(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Validate that `options` only uses keys the named generator accepts
  /// and pass the entry's own range checks.
  void check_options(const std::string& name,
                     const ProblemOptions& options) const;

  [[nodiscard]] Problem create(const ProblemSpec& spec) const;
  [[nodiscard]] Problem create(const std::string& spec_string) const;

 private:
  std::map<std::string, Entry> entries_;
};

}  // namespace mstep::problems
