// ProblemRegistry mechanics and the built-in generator catalog.
//
// Every generator manufactures its right-hand side from a known discrete
// solution (b = K u*) whenever it can, so a driver can report the true
// solve error, not just the stopping quantity.  Stencil generators also
// hand the solver their closed-form colour classes; the rest rely on the
// greedy matrix-graph colouring.
#include "problems/problem.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fem/plane_stress.hpp"
#include "fem/plate_mesh.hpp"
#include "fem/poisson.hpp"
#include "la/dia_matrix.hpp"
#include "util/rng.hpp"

namespace mstep::problems {

namespace {

constexpr double kPi = 3.14159265358979323846;

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

double option_or(const ProblemOptions& options, const std::string& key,
                 double fallback) {
  auto it = options.find(key);
  return it == options.end() ? fallback : it->second;
}

/// Integer option with range validation; throws std::invalid_argument on
/// a non-integral or out-of-range value.
int int_option(const ProblemOptions& options, const std::string& problem,
               const std::string& key, int fallback, int lo, int hi) {
  const double v = option_or(options, key, fallback);
  if (v != std::floor(v) || v < lo || v > hi) {
    throw std::invalid_argument(
        "problem '" + problem + "': option '" + key + "' must be an integer in [" +
        std::to_string(lo) + ", " + std::to_string(hi) + "], got " +
        util::format_double(v));
  }
  return static_cast<int>(v);
}

/// Finish a generated problem: manufacture b = K u*, record the resolved
/// spec, and run the bandedness probe.
void finish(Problem* p, Vec exact) {
  if (!exact.empty()) {
    p->exact_solution = std::move(exact);
    p->rhs.resize(p->exact_solution.size());
    p->matrix.multiply(p->exact_solution, p->rhs);
  }
  p->dia_friendly = la::DiaMatrix::profitable(p->matrix);
}

/// Red/black (two-colour) classes for a stencil whose neighbours all flip
/// the parity `parity(cell)` — the 5/7-point families.
color::ColorClasses parity_classes(index_t n,
                                   const std::function<int(index_t)>& parity,
                                   int num_colors) {
  color::ColorClasses cc;
  cc.classes.resize(static_cast<std::size_t>(num_colors));
  for (index_t e = 0; e < n; ++e) {
    cc.classes[static_cast<std::size_t>(parity(e))].push_back(e);
  }
  // Drop empty classes (e.g. a 1-wide grid may not reach every colour).
  cc.classes.erase(
      std::remove_if(cc.classes.begin(), cc.classes.end(),
                     [](const std::vector<index_t>& c) { return c.empty(); }),
      cc.classes.end());
  return cc;
}

/// Red/black classes of a row-major nx-wide 2D grid — shared by every
/// 5-point generator (the one place the parity/ordering convention
/// lives).
color::ColorClasses red_black_grid(int nx, index_t nn) {
  return parity_classes(
      nn,
      [nx](index_t e) {
        return (static_cast<int>(e) % nx + static_cast<int>(e) / nx) % 2;
      },
      2);
}

/// Grid restriction of u(x, y) on the interior points of the unit square
/// ((i+1)hx, (j+1)hy), row-major — the manufactured exact solutions.
Vec grid2d_exact(int nx, int ny,
                 const std::function<double(double, double)>& u) {
  const double hx = 1.0 / (nx + 1), hy = 1.0 / (ny + 1);
  Vec exact(static_cast<std::size_t>(nx) * ny);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      exact[static_cast<std::size_t>(j) * nx + i] =
          u((i + 1) * hx, (j + 1) * hy);
    }
  }
  return exact;
}

// ---- poisson2d: 5-point Laplacian on the unit square ------------------------

Problem make_poisson2d(const ProblemOptions& options) {
  const int n = int_option(options, "poisson2d", "n", 32, 1, 2048);
  const int nx = int_option(options, "poisson2d", "nx", n, 1, 2048);
  const int ny = int_option(options, "poisson2d", "ny", n, 1, 2048);
  const fem::PoissonProblem grid(nx, ny);

  Problem p;
  p.spec = {"poisson2d", {{"nx", double(nx)}, {"ny", double(ny)}}};
  p.description = "2D Poisson, 5-point stencil, " + std::to_string(nx) + "x" +
                  std::to_string(ny) + " interior grid, red/black colouring";
  p.matrix = grid.matrix();
  p.classes = color::two_color_classes(grid);
  finish(&p, grid.grid_function([](double x, double y) {
    return std::sin(kPi * x) * std::sin(kPi * y);
  }));
  return p;
}

// ---- poisson3d: 7-point Laplacian on the unit cube --------------------------

Problem make_poisson3d(const ProblemOptions& options) {
  const int n = int_option(options, "poisson3d", "n", 16, 1, 256);
  const int nx = int_option(options, "poisson3d", "nx", n, 1, 256);
  const int ny = int_option(options, "poisson3d", "ny", n, 1, 256);
  const int nz = int_option(options, "poisson3d", "nz", n, 1, 256);
  const auto total = static_cast<long long>(nx) * ny * nz;
  if (total > (1LL << 24)) {
    throw std::invalid_argument(
        "problem 'poisson3d': " + std::to_string(total) +
        " unknowns exceed the 2^24 cap; shrink n/nx/ny/nz");
  }
  const index_t nn = static_cast<index_t>(total);
  auto id = [&](int i, int j, int k) {
    return static_cast<index_t>((static_cast<long long>(k) * ny + j) * nx + i);
  };

  la::CooBuilder builder(nn, nn);
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const index_t e = id(i, j, k);
        builder.add(e, e, 6.0);
        if (i > 0) builder.add(e, id(i - 1, j, k), -1.0);
        if (i + 1 < nx) builder.add(e, id(i + 1, j, k), -1.0);
        if (j > 0) builder.add(e, id(i, j - 1, k), -1.0);
        if (j + 1 < ny) builder.add(e, id(i, j + 1, k), -1.0);
        if (k > 0) builder.add(e, id(i, j, k - 1), -1.0);
        if (k + 1 < nz) builder.add(e, id(i, j, k + 1), -1.0);
      }
    }
  }

  Problem p;
  p.spec = {"poisson3d",
            {{"nx", double(nx)}, {"ny", double(ny)}, {"nz", double(nz)}}};
  p.description = "3D Poisson, 7-point stencil, " + std::to_string(nx) + "x" +
                  std::to_string(ny) + "x" + std::to_string(nz) +
                  " interior grid, red/black colouring";
  p.matrix = builder.build();

  const double hx = 1.0 / (nx + 1), hy = 1.0 / (ny + 1), hz = 1.0 / (nz + 1);
  Vec exact(static_cast<std::size_t>(nn));
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        exact[static_cast<std::size_t>(id(i, j, k))] =
            std::sin(kPi * (i + 1) * hx) * std::sin(kPi * (j + 1) * hy) *
            std::sin(kPi * (k + 1) * hz);
      }
    }
  }
  p.classes = parity_classes(
      nn,
      [&](index_t e) {
        const int i = static_cast<int>(e) % nx;
        const int j = (static_cast<int>(e) / nx) % ny;
        const int k = static_cast<int>(e) / (nx * ny);
        return (i + j + k) % 2;
      },
      2);
  finish(&p, std::move(exact));
  return p;
}

// ---- aniso2d: anisotropic diffusion with a strength ratio -------------------

Problem make_aniso2d(const ProblemOptions& options) {
  const int n = int_option(options, "aniso2d", "n", 32, 1, 2048);
  const int nx = int_option(options, "aniso2d", "nx", n, 1, 2048);
  const int ny = int_option(options, "aniso2d", "ny", n, 1, 2048);
  const double ratio = option_or(options, "ratio", 100.0);
  if (!(ratio > 0.0) || !std::isfinite(ratio)) {
    throw std::invalid_argument(
        "problem 'aniso2d': option 'ratio' must be a positive anisotropy "
        "strength, got " +
        util::format_double(ratio));
  }
  const index_t nn = static_cast<index_t>(nx) * ny;
  auto id = [&](int i, int j) { return static_cast<index_t>(j) * nx + i; };

  // -(ratio u_xx + u_yy): x-coupling scaled by the ratio — the classic
  // hard case for unparametrized smoothers.
  la::CooBuilder builder(nn, nn);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const index_t e = id(i, j);
      builder.add(e, e, 2.0 * ratio + 2.0);
      if (i > 0) builder.add(e, id(i - 1, j), -ratio);
      if (i + 1 < nx) builder.add(e, id(i + 1, j), -ratio);
      if (j > 0) builder.add(e, id(i, j - 1), -1.0);
      if (j + 1 < ny) builder.add(e, id(i, j + 1), -1.0);
    }
  }

  Problem p;
  p.spec = {"aniso2d",
            {{"nx", double(nx)}, {"ny", double(ny)}, {"ratio", ratio}}};
  p.description = "2D anisotropic diffusion (eps = " +
                  util::format_double(ratio) + "), 5-point stencil, " +
                  std::to_string(nx) + "x" + std::to_string(ny) + " grid";
  p.matrix = builder.build();
  p.classes = red_black_grid(nx, nn);
  finish(&p, grid2d_exact(nx, ny, [](double x, double y) {
           return std::sin(kPi * x) * std::sin(2.0 * kPi * y);
         }));
  return p;
}

// ---- convdiff: symmetrized convection–diffusion with an SPD guard -----------

/// Cell Péclet number q = peclet * h / 2 of the central-difference scheme.
double convdiff_cell_peclet(int nx, double peclet) {
  return peclet / (2.0 * (nx + 1));
}

void convdiff_guard(int nx, double peclet) {
  if (!(peclet >= 0.0) || !std::isfinite(peclet)) {
    throw std::invalid_argument(
        "problem 'convdiff': option 'peclet' must be >= 0, got " +
        util::format_double(peclet));
  }
  const double q = convdiff_cell_peclet(nx, peclet);
  if (q >= 1.0) {
    throw std::invalid_argument(
        "problem 'convdiff': not SPD — cell Peclet number " +
        util::format_double(q) + " >= 1 (peclet = " +
        util::format_double(peclet) + ", nx = " + std::to_string(nx) +
        "); the symmetrized central-difference operator loses positive "
        "definiteness.  Refine the grid (raise n) or lower peclet below " +
        util::format_double(2.0 * (nx + 1)));
  }
}

Problem make_convdiff(const ProblemOptions& options) {
  const int n = int_option(options, "convdiff", "n", 32, 1, 2048);
  const int nx = int_option(options, "convdiff", "nx", n, 1, 2048);
  const int ny = int_option(options, "convdiff", "ny", n, 1, 2048);
  const double peclet = option_or(options, "peclet", 10.0);
  convdiff_guard(nx, peclet);
  // -u_xx - u_yy + peclet u_x, central differences.  The x-direction
  // tridiagonal with off-diagonals -(1 +- q) is diagonally similar to a
  // symmetric one with off-diagonal -sqrt(1 - q^2); that symmetrized
  // operator is what we assemble, and it is SPD exactly while the cell
  // Peclet q stays below 1 — the guard above.
  const double q = convdiff_cell_peclet(nx, peclet);
  const double off_x = -std::sqrt(1.0 - q * q);
  const index_t nn = static_cast<index_t>(nx) * ny;
  auto id = [&](int i, int j) { return static_cast<index_t>(j) * nx + i; };

  la::CooBuilder builder(nn, nn);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const index_t e = id(i, j);
      builder.add(e, e, 4.0);
      if (i > 0) builder.add(e, id(i - 1, j), off_x);
      if (i + 1 < nx) builder.add(e, id(i + 1, j), off_x);
      if (j > 0) builder.add(e, id(i, j - 1), -1.0);
      if (j + 1 < ny) builder.add(e, id(i, j + 1), -1.0);
    }
  }

  Problem p;
  p.spec = {"convdiff",
            {{"nx", double(nx)}, {"ny", double(ny)}, {"peclet", peclet}}};
  p.description = "symmetrized convection-diffusion (peclet = " +
                  util::format_double(peclet) + ", cell Peclet " +
                  util::format_double(q) + "), " + std::to_string(nx) + "x" +
                  std::to_string(ny) + " grid";
  p.matrix = builder.build();
  p.classes = red_black_grid(nx, nn);
  finish(&p, grid2d_exact(nx, ny, [](double x, double y) {
           return x * (1.0 - x) * std::sin(kPi * y);
         }));
  return p;
}

// ---- randspd: random banded strictly diagonally dominant SPD ----------------

Problem make_randspd(const ProblemOptions& options) {
  const int n = int_option(options, "randspd", "n", 500, 1, 1 << 22);
  const int band = int_option(options, "randspd", "band",
                              std::min(8, std::max(1, n - 1)), 1,
                              std::max(1, n - 1));
  const int seed = int_option(options, "randspd", "seed", 1, 0, 1 << 30);

  util::Rng rng(static_cast<std::uint64_t>(seed));
  la::CooBuilder builder(n, n);
  Vec row_abs(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = std::max(0, i - band); j < i; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      builder.add(i, j, v);
      builder.add(j, i, v);
      row_abs[static_cast<std::size_t>(i)] += std::abs(v);
      row_abs[static_cast<std::size_t>(j)] += std::abs(v);
    }
  }
  // Strict diagonal dominance makes the symmetric matrix SPD.
  for (int i = 0; i < n; ++i) {
    builder.add(i, i, row_abs[static_cast<std::size_t>(i)] + 1.0 +
                          rng.uniform(0.0, 1.0));
  }

  Problem p;
  p.spec = {"randspd",
            {{"band", double(band)}, {"n", double(n)}, {"seed", double(seed)}}};
  p.description = "random strictly diagonally dominant SPD band matrix, n = " +
                  std::to_string(n) + ", half-bandwidth " +
                  std::to_string(band) + ", seed " + std::to_string(seed);
  p.matrix = builder.build();
  finish(&p, rng.uniform_vector(static_cast<std::size_t>(n)));
  return p;
}

// ---- stencil9: 9-point box stencil ------------------------------------------

Problem make_stencil9(const ProblemOptions& options) {
  const int n = int_option(options, "stencil9", "n", 32, 1, 2048);
  const int nx = int_option(options, "stencil9", "nx", n, 1, 2048);
  const int ny = int_option(options, "stencil9", "ny", n, 1, 2048);
  const index_t nn = static_cast<index_t>(nx) * ny;
  auto id = [&](int i, int j) { return static_cast<index_t>(j) * nx + i; };

  la::CooBuilder builder(nn, nn);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const index_t e = id(i, j);
      builder.add(e, e, 8.0);
      for (int dj = -1; dj <= 1; ++dj) {
        for (int di = -1; di <= 1; ++di) {
          if (di == 0 && dj == 0) continue;
          const int ii = i + di, jj = j + dj;
          if (ii < 0 || ii >= nx || jj < 0 || jj >= ny) continue;
          builder.add(e, id(ii, jj), -1.0);
        }
      }
    }
  }

  Problem p;
  p.spec = {"stencil9", {{"nx", double(nx)}, {"ny", double(ny)}}};
  p.description = "9-point box stencil Laplacian, " + std::to_string(nx) +
                  "x" + std::to_string(ny) + " grid, four-colour ordering";
  p.matrix = builder.build();
  // The Moore neighbourhood changes i or j parity for every neighbour, so
  // the four (i mod 2, j mod 2) classes decouple.
  p.classes = parity_classes(
      nn,
      [&](index_t e) {
        const int i = static_cast<int>(e) % nx;
        const int j = static_cast<int>(e) / nx;
        return (i % 2) * 2 + (j % 2);
      },
      4);
  finish(&p, grid2d_exact(nx, ny, [](double x, double y) {
           return std::sin(kPi * x) * std::sin(kPi * y);
         }));
  return p;
}

// ---- femplate / cyberplate: the paper's plane-stress plate ------------------

Problem make_plate(const std::string& name, const ProblemOptions& options,
                   int default_a, const std::string& flavour) {
  const int a = int_option(options, name, "a", default_a, 2, 512);
  const fem::PlateMesh mesh = fem::PlateMesh::unit_square(a);
  const auto sys = fem::assemble_plane_stress(mesh, fem::Material{},
                                              fem::EdgeLoad{1.0, 0.0});
  Problem p;
  p.spec = {name, {{"a", double(a)}}};
  p.description = flavour + ", a = " + std::to_string(a) + " (" +
                  std::to_string(sys.stiffness.rows()) +
                  " equations), six-colour ordering";
  p.matrix = sys.stiffness;
  p.rhs = sys.load;  // the physical load; no manufactured solution
  p.classes = color::six_color_classes(mesh);
  p.dia_friendly = la::DiaMatrix::profitable(p.matrix);
  return p;
}

ProblemRegistry make_registry() {
  ProblemRegistry reg;

  auto simple = [](std::function<Problem(const ProblemOptions&)> factory,
                   std::vector<std::string> keys, std::string description) {
    ProblemRegistry::Entry e;
    e.factory = std::move(factory);
    e.option_keys = std::move(keys);
    e.description = std::move(description);
    return e;
  };

  reg.add("poisson2d",
          simple(make_poisson2d, {"n", "nx", "ny"},
                 "2D Poisson, 5-point stencil, red/black colouring"));
  reg.add("poisson3d",
          simple(make_poisson3d, {"n", "nx", "ny", "nz"},
                 "3D Poisson, 7-point stencil, red/black colouring"));
  reg.add("aniso2d",
          simple(make_aniso2d, {"n", "nx", "ny", "ratio"},
                 "2D anisotropic diffusion with strength ratio"));

  ProblemRegistry::Entry convdiff =
      simple(make_convdiff, {"n", "nx", "ny", "peclet"},
             "symmetrized convection-diffusion (SPD while cell Peclet < 1)");
  convdiff.validate_options = [](const ProblemOptions& options) {
    const int n = int_option(options, "convdiff", "n", 32, 1, 2048);
    const int nx = int_option(options, "convdiff", "nx", n, 1, 2048);
    convdiff_guard(nx, option_or(options, "peclet", 10.0));
  };
  reg.add("convdiff", std::move(convdiff));

  reg.add("randspd",
          simple(make_randspd, {"n", "band", "seed"},
                 "random strictly diagonally dominant SPD band matrix"));
  reg.add("stencil9",
          simple(make_stencil9, {"n", "nx", "ny"},
                 "9-point box stencil Laplacian, four-colour ordering"));
  reg.add("femplate",
          simple(
              [](const ProblemOptions& o) {
                return make_plate("femplate", o, 30,
                                  "plane-stress FEM plate (Section 3)");
              },
              {"a"}, "the paper's plane-stress FEM plate"));
  reg.add("cyberplate",
          simple(
              [](const ProblemOptions& o) {
                return make_plate(
                    "cyberplate", o, 41,
                    "plane-stress plate at the Table 2 CYBER sizes");
              },
              {"a"},
              "the Table 2 plate workload (DIA-oriented CYBER scenario)"));

  return reg;
}

}  // namespace

ProblemSpec ProblemSpec::from_string(const std::string& text) {
  ProblemSpec spec;
  util::parse_spec(text, "ProblemSpec", &spec.name, &spec.options);
  return spec;
}

ProblemRegistry& ProblemRegistry::instance() {
  static ProblemRegistry reg = make_registry();
  return reg;
}

void ProblemRegistry::add(const std::string& name, Entry entry) {
  if (!entry.factory) {
    throw std::invalid_argument("ProblemRegistry: entry for '" + name +
                                "' needs a factory");
  }
  entries_[name] = std::move(entry);
}

bool ProblemRegistry::contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

const ProblemRegistry::Entry& ProblemRegistry::at(
    const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument("unknown problem '" + name + "' (known: " +
                                join_names(names()) + ")");
  }
  return it->second;
}

std::vector<std::string> ProblemRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

void ProblemRegistry::check_options(const std::string& name,
                                    const ProblemOptions& options) const {
  const Entry& entry = at(name);
  for (const auto& [key, value] : options) {
    if (std::find(entry.option_keys.begin(), entry.option_keys.end(), key) ==
        entry.option_keys.end()) {
      throw std::invalid_argument("problem '" + name +
                                  "' does not take option '" + key + "'");
    }
  }
  if (entry.validate_options) entry.validate_options(options);
}

Problem ProblemRegistry::create(const ProblemSpec& spec) const {
  check_options(spec.name, spec.options);
  return at(spec.name).factory(spec.options);
}

Problem ProblemRegistry::create(const std::string& spec_string) const {
  return create(ProblemSpec::from_string(spec_string));
}

}  // namespace mstep::problems
