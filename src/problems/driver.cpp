#include "problems/driver.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/params.hpp"
#include "io/matrix_market.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace mstep::problems {

namespace {

std::string exception_message(const std::exception_ptr& e) {
  if (!e) return "";
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace

Problem resolve_problem(const DriverInput& input) {
  const bool from_catalog = !input.problem.empty();
  const bool from_file = !input.matrix_path.empty();
  if (from_catalog == from_file) {
    throw std::invalid_argument(
        "give exactly one of --problem=<spec> and --matrix=<file.mtx>");
  }
  if (!input.rhs_path.empty() && !from_file) {
    throw std::invalid_argument(
        "--rhs only applies to --matrix input");
  }

  if (from_catalog) {
    return ProblemRegistry::instance().create(input.problem);
  }

  const io::MmMatrix mm = io::read_matrix_market(input.matrix_path);
  if (mm.matrix.rows() != mm.matrix.cols()) {
    throw std::invalid_argument(
        "matrix " + input.matrix_path + " is " +
        std::to_string(mm.matrix.rows()) + "x" +
        std::to_string(mm.matrix.cols()) + "; the solver wants square SPD");
  }
  Problem p;
  p.spec = {input.matrix_path, {}};
  p.description = "Matrix Market " + io::to_string(mm.header.format) + " " +
                  io::to_string(mm.header.field) + " " +
                  io::to_string(mm.header.symmetry) + " file";
  p.matrix = mm.matrix;
  p.dia_friendly = mm.dia_friendly;
  if (!input.rhs_path.empty()) {
    p.rhs = io::read_vector(input.rhs_path);
    if (p.rhs.size() != static_cast<std::size_t>(p.matrix.rows())) {
      throw std::invalid_argument(
          "right-hand side " + input.rhs_path + " has " +
          std::to_string(p.rhs.size()) + " entries, matrix has " +
          std::to_string(p.matrix.rows()) + " rows");
    }
  } else {
    // No RHS file: manufacture b = K*1, making all-ones the known
    // solution.
    p.exact_solution.assign(static_cast<std::size_t>(p.matrix.rows()), 1.0);
    p.rhs.resize(p.exact_solution.size());
    p.matrix.multiply(p.exact_solution, p.rhs);
  }
  return p;
}

namespace {

DriverResult run_resolved(const Problem& problem,
                          const solver::SolverConfig& config, int nrhs,
                          const std::string& source,
                          const std::string& problem_name) {
  if (nrhs < 1) {
    throw std::invalid_argument("--nrhs must be >= 1");
  }
  DriverResult r;
  r.source = source;
  r.problem_name = problem_name;
  r.description = problem.description;
  r.n = problem.matrix.rows();
  r.nnz = problem.matrix.nnz();
  r.bandwidth = problem.matrix.bandwidth();
  r.nonzero_diagonals = problem.matrix.num_nonzero_diagonals();
  r.dia_friendly = problem.dia_friendly;
  r.used_classes = problem.has_classes();
  r.config = config;

  std::vector<Vec> bs;
  bs.reserve(static_cast<std::size_t>(nrhs));
  bs.push_back(problem.rhs);
  util::Rng rng(0x6d737465);  // "mste": one fixed seed, reproducible runs
  for (int j = 1; j < nrhs; ++j) {
    bs.push_back(rng.uniform_vector(problem.rhs.size()));
  }

  // Always record the per-iteration convergence history: it is pure
  // observability (a timer read and a push_back per iteration, no change
  // to the floating-point data flow), and the report surfaces it.  The
  // reported config stays the caller's, so config strings are stable.
  solver::SolverConfig solve_config = config;
  solve_config.record_history = true;
  const auto solver = solver::Solver::from_config(solve_config);
  util::Timer setup_timer;
  const auto prepared = problem.has_classes()
                            ? solver.prepare(problem.matrix, problem.classes)
                            : solver.prepare(problem.matrix);
  r.setup_seconds = setup_timer.seconds();
  r.format_selected = solver::to_string(prepared.resolved_format());

  r.batch = prepared.solveMany(bs);
  // What actually ran, not what was asked: solveMany reports shards = 0
  // when wide batch lanes claimed the pool instead of the shard plan.
  r.shards = !r.batch.reports.empty() && r.batch.ok(0)
                 ? r.batch.reports[0].shards
                 : prepared.shards();
  r.error_messages.reserve(r.batch.size());
  for (const auto& e : r.batch.errors) {
    r.error_messages.push_back(exception_message(e));
  }

  r.error_vs_exact = std::numeric_limits<double>::quiet_NaN();
  r.has_exact = problem.has_exact();
  if (r.has_exact && r.batch.ok(0)) {
    const Vec& u = r.batch.reports[0].solution;
    const Vec& star = problem.exact_solution;
    double err = 0.0, scale = 0.0;
    for (std::size_t i = 0; i < star.size(); ++i) {
      err = std::max(err, std::abs(u[i] - star[i]));
      scale = std::max(scale, std::abs(star[i]));
    }
    r.error_vs_exact = scale > 0.0 ? err / scale : err;
  }
  return r;
}

}  // namespace

DriverResult run(const DriverInput& input,
                 const solver::SolverConfig& config) {
  const Problem problem = resolve_problem(input);
  const bool file = !input.matrix_path.empty();
  return run_resolved(problem, config, input.nrhs, file ? "file" : "catalog",
                      file ? input.matrix_path : problem.spec.to_string());
}

DriverResult run(const Problem& problem, const solver::SolverConfig& config,
                 int nrhs) {
  return run_resolved(problem, config, nrhs, "catalog",
                      problem.spec.to_string());
}

util::Json report_json(const DriverResult& r) {
  util::Json iterations = util::Json::array();
  util::Json delta_inf = util::Json::array();
  util::Json errors = util::Json::array();
  for (std::size_t i = 0; i < r.batch.size(); ++i) {
    const bool ok = r.batch.ok(i);
    iterations.push(ok ? util::Json(r.batch.reports[i].iterations())
                       : util::Json());
    delta_inf.push(ok
                       ? util::Json(r.batch.reports[i].result.final_delta_inf)
                       : util::Json());
    errors.push(r.error_messages[i]);
  }

  util::Json j = util::Json::object();
  j.set("tool", "mstep_solve")
      .set("source", r.source)
      .set("problem", r.problem_name)
      .set("description", r.description)
      .set("n", r.n)
      .set("nnz", r.nnz)
      .set("bandwidth", r.bandwidth)
      .set("nonzero_diagonals", r.nonzero_diagonals)
      .set("dia_friendly", r.dia_friendly)
      .set("used_classes", r.used_classes)
      .set("format_selected", r.format_selected)
      .set("shards", r.shards)
      .set("config", r.config.to_string())
      .set("nrhs", static_cast<long long>(r.batch.size()))
      .set("concurrency", r.batch.concurrency)
      .set("setup_seconds", r.setup_seconds)
      .set("wall_seconds", r.batch.wall_seconds)
      .set("solves_per_second", r.batch.solves_per_second())
      .set("converged", r.all_converged())
      .set("iterations", std::move(iterations))
      .set("final_delta_inf", std::move(delta_inf))
      .set("rhs_errors", std::move(errors))
      .set("error_vs_exact",
           r.has_exact ? util::Json(r.error_vs_exact) : util::Json());

  // Spectrum estimate + condition-number proxy (the paper's tables read
  // iteration counts against kappa(M^-1 K)), and RHS 0's per-iteration
  // convergence history.  predicted_condition can be +inf (non-positive
  // eigenvalue map); the JSON writer renders that as null, as it does
  // the m = 0 identity preconditioner's empty alpha vector.
  const auto& rep0 = r.batch.reports[0];
  util::Json interval = util::Json::object();
  interval.set("lambda_min", rep0.interval.lambda_min)
      .set("lambda_max", rep0.interval.lambda_max);
  util::Json history = util::Json::array();
  if (r.batch.ok(0)) {
    for (const auto& h : rep0.result.history) {
      history.push(util::Json::object()
                       .set("value", h.value)
                       .set("alpha", h.alpha)
                       .set("seconds", h.seconds));
    }
  }
  j.set("interval", std::move(interval))
      .set("condition_proxy",
           rep0.alphas.empty()
               ? util::Json()
               : util::Json(core::predicted_condition(rep0.alphas,
                                                      rep0.interval)))
      .set("history", std::move(history));
  return j;
}

}  // namespace mstep::problems
