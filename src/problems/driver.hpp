// The mstep_solve driver core: run ANY problem — a catalog spec or a
// Matrix Market file pair — through the full SolverConfig pipeline and
// produce a machine-readable report.
//
// The CLI tool (tools/mstep_solve.cpp) is a thin flag-parsing wrapper
// around run()/report_json(); tests/test_catalog_io.cpp drives the same
// functions, so what CI smoke-tests is exactly what the tests assert
// (catalog x splitting coverage, serial/threaded/batched bitwise
// identity).
#pragma once

#include <string>
#include <vector>

#include "problems/problem.hpp"
#include "solver/solver.hpp"
#include "util/json_writer.hpp"

namespace mstep::problems {

/// Where the linear system comes from.  Exactly one of `problem` (catalog
/// spec string) and `matrix_path` (Matrix Market file) must be set; a
/// file matrix may bring its own right-hand side via `rhs_path`, and
/// defaults to b = K*1 otherwise — which makes the all-ones vector the
/// known solution, so file solves report a true error too.
struct DriverInput {
  std::string problem;      // catalog spec, e.g. "poisson3d:n=32"
  std::string matrix_path;  // .mtx matrix file
  std::string rhs_path;     // optional .mtx vector file
  /// Total right-hand sides to solve.  The first is the problem's own;
  /// the rest are deterministic pseudo-random vectors, so --batch has
  /// real work to schedule.
  int nrhs = 1;
};

/// Everything one driver run produced, ready for report_json().
struct DriverResult {
  std::string source;        // "catalog" | "file"
  std::string problem_name;  // resolved spec string or the matrix path
  std::string description;
  index_t n = 0;
  index_t nnz = 0;
  index_t bandwidth = 0;
  index_t nonzero_diagonals = 0;
  bool dia_friendly = false;
  bool used_classes = false;  // closed-form classes vs greedy colouring
  /// The operator layout the solve actually ran on ("csr" | "dia" |
  /// "sell") — `--format=auto` resolved through the bandedness/occupancy
  /// probes at prepare time; equal to the requested format otherwise.
  std::string format_selected = "csr";
  /// Effective shard count of the region-sharded backend on the solves
  /// that ran (requested `shards` after the widest-color-block clamp), or
  /// 0 when the run was not sharded.
  int shards = 0;
  solver::SolverConfig config;
  double setup_seconds = 0.0;  // prepare(): colouring + splitting + alphas
  solver::BatchReport batch;   // reports[i] belongs to right-hand side i
  std::vector<std::string> error_messages;  // per failed RHS, "" when ok
  /// Relative |u - u*|_inf / |u*|_inf of the first right-hand side when
  /// the problem knows its exact solution; NaN otherwise.
  double error_vs_exact = 0.0;
  bool has_exact = false;

  [[nodiscard]] bool all_converged() const {
    return batch.num_failed() == 0 && batch.all_converged();
  }
};

/// Resolve the input to a Problem (catalog or Matrix Market).  Throws
/// std::invalid_argument on a bad spec/config and io::MatrixMarketError
/// on a bad file.
[[nodiscard]] Problem resolve_problem(const DriverInput& input);

/// Resolve, prepare, and solve every right-hand side (always through
/// solveMany — with batch <= 1 and no pool that is the sequential serial
/// path, so serial and batched runs flow through one code path and the
/// engine's bitwise guarantee applies).
[[nodiscard]] DriverResult run(const DriverInput& input,
                               const solver::SolverConfig& config);

/// Same, on an already-resolved problem — for callers sweeping many
/// configs over one system (the catalog bench) without regenerating it
/// per config.  `nrhs` as in DriverInput.
[[nodiscard]] DriverResult run(const Problem& problem,
                               const solver::SolverConfig& config,
                               int nrhs = 1);

/// The stable machine-readable report schema (tools/check_report.py
/// validates it in CI).
[[nodiscard]] util::Json report_json(const DriverResult& r);

}  // namespace mstep::problems
